//! The frozen-pool seed-query engine — the serving-side counterpart of
//! the one-shot SSA/D-SSA solvers.
//!
//! A solver run ends with a pool of RR sets whose greedy cover *is* the
//! answer; a service wants to keep that pool and answer many follow-up
//! questions against it: different budgets `k`, different pool slices,
//! "what if these influencers are unavailable" (excluded seeds), "we
//! already signed these" (forced seeds), and "how does it look for
//! *this* target group" (per-query weighted universes via TVM root
//! weights). [`SeedQueryEngine`] seals a pool, freezes initial-gain
//! state in [`sns_rrset::GainSnapshot`]s, and answers [`SeedQuery`]
//! batches thread-parallel with per-worker [`GreedyScratch`]es. Results
//! are **bit-identical** to calling [`sns_rrset::max_coverage_range`]
//! (or the constrained/weighted selection) directly, and batch answers
//! are independent of thread count and batch composition.
//!
//! # Epoch-incremental snapshots and the cache policy
//!
//! Snapshots are frozen **per sealed pool epoch** (the id ranges
//! [`RrCollection::epoch_boundaries`] exposes) and merged at query time
//! for ranges spanning several epochs — gain histograms sum, the heap
//! seed is rebuilt from the merged histogram, and the merged result is
//! cached per `(range, epoch signature)`. Because epoch boundaries are
//! append-only, [`SeedQueryEngine::extend`]ing the pool invalidates
//! **nothing**: it freezes only the new epoch, and every previously
//! cached snapshot keeps serving (a full-pool query after growth merges
//! the old epochs with the one new snapshot instead of rebuilding from
//! scratch). Each snapshot also carries its slice's rebased CSR offsets,
//! so a steady-state cache hit does zero `O(range_len)` view-rebase
//! work.
//!
//! The cache is LRU with a byte budget
//! ([`SeedQueryEngine::with_cache_budget`]): every entry — per-epoch,
//! merged, or weighted-by-topic ([`sns_rrset::WeightedGainSnapshot`],
//! keyed by the [`SeedQuery::topic`] id so repeated TVM queries skip the
//! per-query weighted histogram pass) — is accounted, least-recently-used
//! entries are evicted when the budget overflows, and hit/miss/evict
//! counters are surfaced through [`QueryStats`]. Eviction only ever
//! costs a rebuild, never correctness.
//!
//! # Grow-while-serving
//!
//! The engine's pool lives behind an [`EpochDirectory`]: an immutable,
//! fully sealed [`RrCollection`] per published generation. Every query
//! entry point pins the current generation with **one atomic load** —
//! no reader-side lock exists anywhere on the serving path (enforced by
//! `sns-lint locks/blocking`) — validates against that pin, and answers
//! from it, so each answer is bit-identical to a direct query against
//! one published pool prefix (linearizable at the pin).
//! [`SeedQueryEngine::grower`] hands out the single-writer growth
//! handle: [`Grower::extend`] clones the published pool, samples the
//! continuation of the deterministic stream, seals one new epoch,
//! pre-freezes its [`GainSnapshot`], and publishes the grown pool as
//! the next generation — writers never block readers, readers never
//! block writers.
//!
//! See `docs/ARCHITECTURE.md` (repository root) for the full pipeline,
//! epoch lifecycle, and concurrency-model diagrams.

use std::cell::RefCell;
use std::ops::Range;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use sns_diffusion::RootDist;
use sns_graph::NodeId;
use sns_rrset::{
    CoverageView, EpochDirectory, GainSnapshot, GreedyScratch, NodeCosts, PoolStore, Recovery,
    RrCollection, SaveStats, SeedConstraints, StoreFingerprint, WeightedGainSnapshot,
};

use crate::cache::{CacheKey, CachedSnapshot, SnapshotCache};
use crate::grower::{Grower, GrowerState, GrowthOutcome};
use crate::planner::{BatchPlan, GroupKey, PlanGroup};
use crate::{CoreError, RunResult, SamplingContext};

/// One seed-selection question against a frozen pool. Construct with
/// [`SeedQuery::top_k`] and refine with the builder methods; the
/// defaults mean "plain greedy over the whole pool".
#[derive(Debug, Clone, Default)]
pub struct SeedQuery {
    /// Seed budget (clamped to the node count like the solvers).
    pub k: usize,
    /// Pool id slice to select over; `None` means the whole pool.
    pub range: Option<Range<u32>>,
    /// Seeds selected unconditionally first, consuming budget and
    /// coverage (e.g. influencers already under contract).
    pub forced: Vec<NodeId>,
    /// Nodes the answer must never contain — not even as padding.
    pub excluded: Vec<NodeId>,
    /// Per-node target weights `b(v)`: when set, the query maximizes the
    /// covered *weight* mass (`w_set = b(root)`, uniform-root pools) and
    /// the influence estimate becomes a targeted influence. See
    /// `sns_rrset::snapshot` for the estimator. Shared by `Arc` so
    /// constructing and cloning queries never copies the n-length vector
    /// (`sns_tvm::TargetWeights::seed_query` hands out the same
    /// allocation for every query on a topic).
    pub root_weights: Option<Arc<[f64]>>,
    /// Stable identity of the weight vector, for snapshot reuse: queries
    /// carrying the same topic id (and therefore the same weights — the
    /// caller's contract, verified by `Arc` identity) share one cached
    /// [`sns_rrset::WeightedGainSnapshot`] per range instead of
    /// re-running the weighted gain pass. `sns_tvm::TargetWeights` sets
    /// this automatically; leave `None` for one-off weight vectors.
    pub topic: Option<u64>,
    /// Cost budget `B` replacing the cardinality constraint: when set,
    /// seeds are picked by cost-effectiveness (`gain/cost`) until no
    /// affordable node remains, and `k` is ignored. See
    /// [`SeedQuery::with_budget`].
    pub budget: Option<f64>,
    /// Per-node selection costs for budgeted queries (ignored without a
    /// budget). Defaults to [`NodeCosts::Uniform`]; per-node vectors are
    /// shared and compared by `Arc` identity like `root_weights`.
    pub costs: NodeCosts,
}

impl SeedQuery {
    /// The plain question: the best `k` seeds over the whole pool.
    pub fn top_k(k: usize) -> Self {
        SeedQuery { k, ..SeedQuery::default() }
    }

    /// The budgeted question: the best seeds affordable within `budget`
    /// over the whole pool, at uniform unit costs until
    /// [`SeedQuery::with_costs`] supplies a vector.
    pub fn budgeted(budget: f64) -> Self {
        SeedQuery { budget: Some(budget), ..SeedQuery::default() }
    }

    /// Restricts selection to a pool id slice.
    pub fn over_range(mut self, range: Range<u32>) -> Self {
        self.range = Some(range);
        self
    }

    /// Pre-selects `seeds` (in order) before the greedy loop.
    pub fn with_forced(mut self, seeds: Vec<NodeId>) -> Self {
        self.forced = seeds;
        self
    }

    /// Forbids `nodes` from appearing in the answer.
    pub fn with_excluded(mut self, nodes: Vec<NodeId>) -> Self {
        self.excluded = nodes;
        self
    }

    /// Targets the query at the group weighted by `weights` (one
    /// finite nonnegative entry per node). Accepts a `Vec<f64>` or an
    /// already-shared `Arc<[f64]>`; pass the same `Arc` across queries
    /// to avoid re-validating allocations.
    pub fn with_root_weights(mut self, weights: impl Into<Arc<[f64]>>) -> Self {
        self.root_weights = Some(weights.into());
        self
    }

    /// Declares the weight vector's stable identity (see
    /// [`SeedQuery::topic`]). Must accompany `root_weights`; the same id
    /// must always name the same weights. Hand-managed ids should stay
    /// below `1 << 63` — `sns_tvm::TargetWeights` mints its automatic
    /// ids from the upper half, so the namespaces never collide. (A
    /// collision is detected by `Arc` identity and only costs cache
    /// thrash, never a wrong answer.)
    pub fn with_topic(mut self, topic_id: u64) -> Self {
        self.topic = Some(topic_id);
        self
    }

    /// Replaces the cardinality constraint with a cost budget `B`: the
    /// answer picks seeds by cost-effectiveness until the budget is
    /// exhausted ([`sns_rrset::BudgetedCoverageResult`] semantics, with
    /// the `max(greedy, best single)` guarantee). `k` is ignored while a
    /// budget is set; with [`NodeCosts::Uniform`] and `budget = k` the
    /// answer is bit-identical to the plain top-`k` path. Incompatible
    /// with `root_weights`/`topic` — per-node *benefits* fold into
    /// sampling instead (`RootDist::benefit_weighted`), keeping the
    /// selection objective a plain coverage count.
    pub fn with_budget(mut self, budget: f64) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Sets per-node selection costs for a budgeted query (requires
    /// [`SeedQuery::with_budget`]). Pass the same [`NodeCosts`] value —
    /// for per-node vectors, the same `Arc` — across queries: like topic
    /// weights, cost vectors are compared by identity, never deep-scanned
    /// twice.
    pub fn with_costs(mut self, costs: NodeCosts) -> Self {
        self.costs = costs;
        self
    }
}

/// Answer to one [`SeedQuery`].
#[derive(Debug, Clone, PartialEq)]
pub struct SeedAnswer {
    /// Selected seeds, in selection order (forced seeds first).
    pub seeds: Vec<NodeId>,
    /// Covered in-range sets (unweighted queries) or covered weight mass
    /// (weighted queries).
    pub covered: f64,
    /// `Γ·covered/|slice|` — the Lemma-1 influence estimate of `seeds`
    /// over the queried slice (targeted influence for weighted queries).
    pub influence_estimate: f64,
    /// Marginal (weighted) coverage gain of each seed when selected.
    pub marginal_gains: Vec<f64>,
    /// The pool id slice the query ran over.
    pub range: Range<u32>,
}

/// Snapshot-cache and query counters of a [`SeedQueryEngine`], as
/// returned by [`SeedQueryEngine::stats`]. All counters are cumulative
/// since engine construction. Under concurrent batches a racing
/// double-build can count one extra miss/build (the winners' entries are
/// identical, so correctness is unaffected); sequential use is exact.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Unweighted queries answered from a cached (range-level) snapshot.
    pub snapshot_hits: u64,
    /// Unweighted queries that had to build or merge a snapshot.
    pub snapshot_misses: u64,
    /// Topic-keyed weighted queries answered from a cached
    /// [`WeightedGainSnapshot`].
    pub weighted_hits: u64,
    /// Topic-keyed weighted queries that had to build one. (Weighted
    /// queries without a topic id are always uncached and count nowhere.)
    pub weighted_misses: u64,
    /// Cache entries evicted by the byte budget.
    pub evictions: u64,
    /// Per-epoch [`GainSnapshot`]s frozen (each epoch at most once,
    /// unless evicted and re-needed).
    pub epochs_frozen: u64,
    /// Multi-epoch merges materialized ([`GainSnapshot::merge`]).
    pub merges: u64,
    /// Bytes currently held by cached snapshots.
    pub cached_bytes: u64,
    /// The configured cache byte budget.
    pub budget_bytes: u64,
    /// Batches executed through the planner
    /// ([`SeedQueryEngine::answer_planned`]).
    pub planned_batches: u64,
    /// Planner groups formed across all planned batches (one snapshot
    /// resolution each).
    pub planner_groups: u64,
    /// Snapshot resolutions saved by grouping: queries beyond the first
    /// of their group ([`crate::planner::BatchPlan::builds_saved`]).
    pub planner_builds_saved: u64,
}

/// Default snapshot-cache budget: plenty for tens of frozen ranges on
/// million-node pools, small next to the pool arena itself.
const DEFAULT_CACHE_BUDGET: u64 = 128 << 20;

/// Drains the batch answer slots in query order. Every slot is filled by
/// construction (each index is claimed by exactly one worker / plan
/// group); an empty slot means a bug in this crate and surfaces as
/// [`CoreError::Internal`] rather than a panic, per the panic-path
/// contract.
fn collect_answers(slots: Vec<OnceLock<SeedAnswer>>) -> Result<Vec<SeedAnswer>, CoreError> {
    let mut answers = Vec::with_capacity(slots.len());
    for slot in slots {
        match slot.into_inner() {
            Some(answer) => answers.push(answer),
            None => return Err(CoreError::Internal("a batch answer slot was never filled")),
        }
    }
    Ok(answers)
}

thread_local! {
    /// Selection scratch reused by [`SeedQueryEngine::answer`] — its
    /// stamp/gain tables stay at high-water size instead of costing an
    /// `O(n + range)` allocation-plus-zeroing per single query, which
    /// would rival the very histogram work the snapshot path saves.
    /// Thread-local rather than engine-owned so the single-query path
    /// acquires no mutex. (`answer_batch` workers carry their own,
    /// uncontended.)
    static ANSWER_SCRATCH: RefCell<GreedyScratch> = RefCell::new(GreedyScratch::new());
}

/// A directory of sealed RR-set pool generations plus an
/// epoch-incremental snapshot cache, serving [`SeedQuery`] batches while
/// a [`Grower`] publishes new generations (see the module docs).
#[derive(Debug)]
pub struct SeedQueryEngine {
    /// The pool directory: one immutable, fully sealed [`RrCollection`]
    /// per published generation. Queries pin the current generation with
    /// one atomic load; the [`Grower`] publishes new generations through
    /// the writer handle in [`SeedQueryEngine::writer`]. The directory
    /// never outlives the writer (both live here), which is the
    /// [`EpochDirectory`] liveness contract.
    pub(crate) directory: Arc<EpochDirectory<RrCollection>>,
    /// Per-epoch, merged-range and weighted-by-topic snapshots with LRU
    /// eviction — lock-free lookups, copy-on-write inserts (see
    /// [`SnapshotCache`]). Snapshot contents are a pure function of the
    /// sealed pool slice (and weights), so a racing double-build is
    /// harmless — both instances are identical and either may be cached.
    pub(crate) cache: SnapshotCache,
    gamma: f64,
    pub(crate) threads: usize,
    /// The writer-side state ([`GrowerState`]): the directory publish
    /// handle plus the deterministic sample cursor, serialized behind
    /// the engine's only growth lock. No query path touches it.
    pub(crate) writer: Mutex<GrowerState>,
    /// Sampling identity of the pool, set by the constructors that know
    /// it ([`SeedQueryEngine::sample`], [`SeedQueryEngine::from_store`])
    /// and required by [`SeedQueryEngine::save`]. `None` for
    /// [`SeedQueryEngine::from_pool`] engines, whose pool provenance the
    /// engine cannot vouch for.
    fingerprint: Option<StoreFingerprint>,
}

impl SeedQueryEngine {
    /// Freezes `pool` (sealing its pending index tier) for serving as
    /// directory generation 0. `gamma` is the universe mass behind
    /// influence estimates (`n` for uniform-root pools, `Σ b(v)` if the
    /// pool itself was WRIS-sampled).
    pub fn from_pool(mut pool: RrCollection, gamma: f64) -> Self {
        let _ = pool.seal();
        let next_sample_index = pool.len() as u64;
        let (directory, dir_writer) = EpochDirectory::new(Arc::new(pool));
        SeedQueryEngine {
            directory,
            cache: SnapshotCache::new(DEFAULT_CACHE_BUDGET),
            gamma,
            threads: 1,
            writer: Mutex::new(GrowerState { dir_writer, next_sample_index }),
            fingerprint: None,
        }
    }

    /// Samples a fresh `count`-set pool from `ctx` (stream 0, the same
    /// deterministic stream the solvers draw from, parallel per
    /// `ctx.threads()`) and freezes it. The paper's estimate-then-select
    /// split as a service: size the pool once with the RIS thresholds of
    /// [`crate::bounds`] or a prior [`crate::Ssa`]/[`crate::Dssa`] run,
    /// then answer every follow-up question from the frozen samples.
    pub fn sample(ctx: &SamplingContext<'_>, count: u64) -> Self {
        let mut pool = RrCollection::new(ctx.graph().num_nodes());
        if ctx.threads() > 1 {
            pool.extend_parallel(&ctx.sampler(0), 0, count, ctx.threads());
        } else {
            let mut sampler = ctx.sampler(0);
            pool.extend_sequential(&mut sampler, 0, count);
        }
        let mut engine = Self::from_pool(pool, ctx.gamma()).with_threads(ctx.threads());
        engine.fingerprint = Some(Self::context_fingerprint(ctx));
        engine
    }

    /// The [`StoreFingerprint`] a context's sampling identity maps to:
    /// what [`SeedQueryEngine::save`] records and
    /// [`SeedQueryEngine::from_store`] demands back.
    fn context_fingerprint(ctx: &SamplingContext<'_>) -> StoreFingerprint {
        let roots = match ctx.roots() {
            RootDist::Uniform => "uniform",
            RootDist::Weighted(_) => "weighted",
            RootDist::Benefit(_) => "benefit",
        };
        let mut meta = vec![("roots".to_string(), roots.to_string())];
        // Content checksum of the weight/benefit vector: Γ alone cannot
        // distinguish two vectors with equal mass, so a persisted
        // weighted pool must refuse to reload under a permuted vector
        // loudly instead of silently mis-serving.
        if let Some(ck) = ctx.roots_checksum() {
            meta.push(("roots_checksum".to_string(), format!("{ck:#018x}")));
        }
        StoreFingerprint {
            graph_hash: ctx.graph().content_hash(),
            num_nodes: ctx.graph().num_nodes(),
            model: ctx.model().short_name().to_string(),
            rng_seed: ctx.seed(),
            gamma: ctx.gamma(),
            meta,
        }
    }

    /// Attaches stopping-rule provenance from a solver run to the
    /// engine's fingerprint, so a saved store records *why* the pool has
    /// its size (rule, binding condition, iterations, set counts). No
    /// effect on [`SeedQueryEngine::from_pool`] engines — they carry no
    /// fingerprint and cannot be saved in the first place.
    pub fn with_run_metadata(mut self, run: &RunResult) -> Self {
        if let Some(fp) = &mut self.fingerprint {
            let rule = run.stopping_rule.map_or("fixed-schedule", |r| r.label());
            fp.meta.extend([
                ("stopping_rule".to_string(), rule.to_string()),
                ("binding".to_string(), format!("{:?}", run.binding)),
                ("iterations".to_string(), run.iterations.to_string()),
                ("rr_sets_main".to_string(), run.rr_sets_main.to_string()),
                ("rr_sets_verify".to_string(), run.rr_sets_verify.to_string()),
                ("influence_estimate".to_string(), run.influence_estimate.to_string()),
                ("hit_cap".to_string(), run.hit_cap.to_string()),
            ]);
        }
        self
    }

    /// The engine's sampling fingerprint, if its constructor knew one.
    pub fn fingerprint(&self) -> Option<&StoreFingerprint> {
        self.fingerprint.as_ref()
    }

    /// Persists the frozen pool to the store directory at `dir`
    /// ([`sns_rrset::PoolStore`]): checksummed per-epoch segments plus an
    /// atomically committed manifest carrying the engine's fingerprint.
    /// Incremental — saving after [`SeedQueryEngine::extend`] writes only
    /// the new epochs. Requires a fingerprint, i.e. an engine built by
    /// [`SeedQueryEngine::sample`] or [`SeedQueryEngine::from_store`]
    /// (use [`sns_rrset::PoolStore::save`] directly to persist a foreign
    /// pool under a hand-made fingerprint).
    pub fn save(&self, dir: impl AsRef<Path>) -> Result<SaveStats, CoreError> {
        let fingerprint = self.fingerprint.as_ref().ok_or_else(|| {
            CoreError::InvalidParams(
                "engine carries no sampling fingerprint (built with from_pool); \
                 only sample()/from_store() engines know what to record"
                    .into(),
            )
        })?;
        Ok(PoolStore::at(dir.as_ref()).save(&self.pool(), fingerprint)?)
    }

    /// Loads a pool saved by [`SeedQueryEngine::save`] and freezes it for
    /// serving — the "bake then serve" restart path that skips
    /// resampling. Every epoch is checksum-verified, and the store's
    /// fingerprint must match `ctx`'s sampling identity (same graph
    /// content, model, seed, Γ), so a store can never silently serve
    /// answers for a different network. Strict: any damage is a typed
    /// [`CoreError::Store`]; see
    /// [`SeedQueryEngine::from_store_recovering`] for the
    /// salvage-the-prefix alternative.
    pub fn from_store(dir: impl AsRef<Path>, ctx: &SamplingContext<'_>) -> Result<Self, CoreError> {
        let (pool, fingerprint) = PoolStore::at(dir.as_ref()).load(ctx.threads())?;
        Self::engine_from_loaded(pool, fingerprint, ctx)
    }

    /// Like [`SeedQueryEngine::from_store`], but recovers the longest
    /// valid epoch prefix when the store is damaged: the engine serves
    /// the verified sets immediately, and because sampling is
    /// deterministic per index, `engine.extend(ctx, sets_lost)`
    /// regenerates the lost tail bit-identically. Manifest damage and
    /// fingerprint mismatches are still hard errors.
    pub fn from_store_recovering(
        dir: impl AsRef<Path>,
        ctx: &SamplingContext<'_>,
    ) -> Result<(Self, Recovery), CoreError> {
        let (pool, fingerprint, recovery) =
            PoolStore::at(dir.as_ref()).load_recovering(ctx.threads())?;
        Ok((Self::engine_from_loaded(pool, fingerprint, ctx)?, recovery))
    }

    fn engine_from_loaded(
        pool: RrCollection,
        fingerprint: StoreFingerprint,
        ctx: &SamplingContext<'_>,
    ) -> Result<Self, CoreError> {
        fingerprint.matches_sampling(&Self::context_fingerprint(ctx))?;
        let mut engine = Self::from_pool(pool, fingerprint.gamma).with_threads(ctx.threads());
        engine.fingerprint = Some(fingerprint);
        Ok(engine)
    }

    /// Sets the worker-thread budget for [`SeedQueryEngine::answer_batch`]
    /// (answers never depend on it).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the snapshot-cache byte budget (default 128 MiB). When
    /// cached snapshots exceed it, least-recently-used entries are
    /// evicted; an evicted range is rebuilt on its next query, so the
    /// budget trades latency for memory, never correctness. Answers do
    /// not depend on it.
    pub fn with_cache_budget(self, bytes: u64) -> Self {
        self.cache.set_budget(bytes);
        self
    }

    /// Grows the pool while serving: samples `additional` sets
    /// (continuing the deterministic stream, so the result is
    /// bit-identical to having sampled the final size up front), seals
    /// them as **one new epoch**, and publishes the grown pool as the
    /// next directory generation. Nothing cached is invalidated — epoch
    /// boundaries are append-only, so every previously frozen snapshot
    /// keeps serving its range, and the new epoch's snapshot is frozen
    /// at publish time. This is the serving side of the SSA/D-SSA
    /// doubling schedule: the pool keeps extending, queries keep
    /// answering, and snapshot work stays proportional to the *growth*,
    /// not the pool.
    ///
    /// Convenience for [`SeedQueryEngine::grower`]'s
    /// [`Grower::extend`], which needs only `&self` — use the grower
    /// directly to grow a shared engine while other threads answer.
    pub fn extend(&mut self, ctx: &SamplingContext<'_>, additional: u64) -> GrowthOutcome {
        self.grower().extend(ctx, additional)
    }

    /// The single-writer growth handle (see [`Grower`]). Needs only
    /// `&self`: one thread can grow while others answer from the same
    /// shared engine. Concurrent growers serialize on the writer mutex.
    pub fn grower(&self) -> Grower<'_> {
        Grower::new(self)
    }

    /// The currently published directory generation (0 after
    /// construction, bumped by every epoch-publishing
    /// [`Grower::extend`]).
    pub fn generation(&self) -> u64 {
        self.directory.generation()
    }

    /// The engine's pool directory — pin generations directly when a
    /// caller needs to hold several pool versions at once (tests, audit
    /// tooling); queries pin internally.
    pub fn directory(&self) -> &Arc<EpochDirectory<RrCollection>> {
        &self.directory
    }

    /// The engine's cumulative cache/query counters.
    pub fn stats(&self) -> QueryStats {
        self.cache.stats()
    }

    /// The currently published pool generation, pinned: the returned
    /// `Arc` stays valid (and bit-identical) forever, even across
    /// concurrent growth — later generations are new pools, not
    /// mutations of this one.
    pub fn pool(&self) -> Arc<RrCollection> {
        self.directory.pin().1
    }

    /// The universe mass Γ behind influence estimates.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Answers one query against the currently published pool
    /// generation (pinned with one atomic load — no locks on this
    /// path), reusing a thread-local selection scratch. Per-range gain
    /// snapshots are cached either way.
    pub fn answer(&self, query: &SeedQuery) -> Result<SeedAnswer, CoreError> {
        let (_, pool) = self.directory.pin();
        self.validate(query, &pool)?;
        ANSWER_SCRATCH.with(|cell| {
            // Scratch state is generation-stamped and fully
            // re-initialized per selection; a re-entrant borrow (answer
            // called from within answer — impossible today) falls back
            // to a fresh scratch rather than panicking on a serving
            // path.
            match cell.try_borrow_mut() {
                Ok(mut scratch) => Ok(self.answer_validated(query, &pool, &mut scratch)),
                Err(_) => Ok(self.answer_validated(query, &pool, &mut GreedyScratch::new())),
            }
        })
    }

    /// Answers a batch of heterogeneous queries, thread-parallel across
    /// queries with per-worker scratches. `answers[i]` corresponds to
    /// `queries[i]` and is bit-identical to answering sequentially (each
    /// answer depends only on the frozen pool and its query). The whole
    /// batch is validated before any work starts.
    pub fn answer_batch(&self, queries: &[SeedQuery]) -> Result<Vec<SeedAnswer>, CoreError> {
        // An empty batch has nothing to validate, plan, or snapshot:
        // return without touching the cache or spawning workers.
        if queries.is_empty() {
            return Ok(Vec::new());
        }
        // One pin for the whole batch: every member is validated and
        // answered against the same pool generation, so a batch racing
        // concurrent growth is equivalent to running entirely before or
        // entirely after the publish.
        let (_, pool) = self.directory.pin();
        for (i, q) in queries.iter().enumerate() {
            self.validate(q, &pool)
                .map_err(|e| CoreError::InvalidParams(format!("query {i}: {e}")))?;
        }
        let workers = self.threads.min(queries.len()).max(1);
        if workers == 1 {
            let mut scratch = GreedyScratch::new();
            return Ok(queries
                .iter()
                .map(|q| self.answer_validated(q, &pool, &mut scratch))
                .collect());
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<OnceLock<SeedAnswer>> = queries.iter().map(|_| OnceLock::new()).collect();
        let pool = &pool;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut scratch = GreedyScratch::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(query) = queries.get(i) else { break };
                        let answer = self.answer_validated(query, pool, &mut scratch);
                        // `fetch_add` hands each index to exactly one
                        // worker; a double set is impossible, and answers
                        // are deterministic so it would be value-identical
                        // anyway — no reason to panic on a serving path.
                        if let Some(slot) = slots.get(i) {
                            let _ = slot.set(answer);
                        }
                    }
                });
            }
        });
        collect_answers(slots)
    }

    /// Answers a batch through the batch planner: queries are grouped by
    /// the snapshot they need ([`crate::planner::BatchPlan`] — the pool
    /// range for plain queries, `(range, topic)` for topic-weighted
    /// ones) and each group resolves its snapshot **exactly once**,
    /// shared by every member. Answers are bit-identical to
    /// [`SeedQueryEngine::answer_batch`] on the same input
    /// (property-tested): planning changes who pays for a snapshot
    /// resolution, never the answer. Workers parallelize across
    /// *groups*, so the win condition is skewed traffic — many queries
    /// over few distinct (range, topic) keys — exactly what production
    /// batches look like. The plan's group and sharing counts are
    /// recorded in [`QueryStats`].
    pub fn answer_planned(&self, queries: &[SeedQuery]) -> Result<Vec<SeedAnswer>, CoreError> {
        if queries.is_empty() {
            return Ok(Vec::new());
        }
        // One pin for the whole batch (see `answer_batch`); the plan is
        // stamped with the pinned generation, making "which pool prefix
        // answered this batch" auditable.
        let (generation, pool) = self.directory.pin();
        for (i, q) in queries.iter().enumerate() {
            self.validate(q, &pool)
                .map_err(|e| CoreError::InvalidParams(format!("query {i}: {e}")))?;
        }
        let plan = BatchPlan::build_for_generation(queries, pool.id_range().end, generation);
        self.cache.note_planned(plan.num_groups() as u64, plan.builds_saved());
        let groups = plan.groups();
        let slots: Vec<OnceLock<SeedAnswer>> = queries.iter().map(|_| OnceLock::new()).collect();
        let workers = self.threads.min(groups.len()).max(1);
        if workers == 1 {
            let mut scratch = GreedyScratch::new();
            for group in groups {
                self.answer_group(queries, group, &pool, &mut scratch, &slots);
            }
        } else {
            let next = AtomicUsize::new(0);
            let pool = &pool;
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| {
                        let mut scratch = GreedyScratch::new();
                        loop {
                            let g = next.fetch_add(1, Ordering::Relaxed);
                            let Some(group) = groups.get(g) else { break };
                            self.answer_group(queries, group, pool, &mut scratch, &slots);
                        }
                    });
                }
            });
        }
        collect_answers(slots)
    }

    /// Executes one plan group: resolves the shared snapshot once, then
    /// answers every member against it. Members of a topic group whose
    /// weight vector is not the very `Arc` the group resolved with (a
    /// same-topic-different-weights contract breach) fall back to the
    /// per-query path — degraded sharing, never a wrong answer.
    fn answer_group(
        &self,
        queries: &[SeedQuery],
        group: &PlanGroup,
        pool: &RrCollection,
        scratch: &mut GreedyScratch,
        slots: &[OnceLock<SeedAnswer>],
    ) {
        // Member indices come from `BatchPlan::build` over these same
        // queries, so every lookup below succeeds and every slot is set
        // exactly once. The serving path still refuses to panic on a
        // broken invariant: an out-of-range member is skipped (surfacing
        // as `CoreError::Internal` when the answers are collected) and a
        // double set is ignored — answers are deterministic, so a second
        // set would be value-identical.
        let set = |i: usize, answer: SeedAnswer| {
            if let Some(slot) = slots.get(i) {
                let _ = slot.set(answer);
            }
        };
        match group.key {
            GroupKey::Plain { start, end } => {
                let range = start..end;
                let snapshot = self.snapshot_for(pool, &range);
                // Budgeted queries are unweighted and group here too —
                // same snapshot identity, different selection loop.
                for &i in &group.members {
                    let Some(query) = queries.get(i) else { continue };
                    let answer = match query.budget {
                        Some(budget) => self
                            .answer_budgeted_with(query, budget, pool, &range, &snapshot, scratch),
                        None => self.answer_plain_with(query, pool, &range, &snapshot, scratch),
                    };
                    set(i, answer);
                }
            }
            GroupKey::Topic { start, end, topic } => {
                let range = start..end;
                // Topic groups imply root weights (the planner only
                // groups weighted queries under `Topic`); if that ever
                // broke, fall back to the per-query path — degraded
                // sharing, never a wrong answer or a panic.
                let shared = group
                    .members
                    .first()
                    .and_then(|&first| queries.get(first))
                    .and_then(|q| q.root_weights.as_ref());
                let Some(shared) = shared else {
                    for &i in &group.members {
                        let Some(query) = queries.get(i) else { continue };
                        set(i, self.answer_validated(query, pool, scratch));
                    }
                    return;
                };
                let snapshot = self.weighted_snapshot_for(pool, &range, topic, shared);
                for &i in &group.members {
                    let Some(query) = queries.get(i) else { continue };
                    let same_arc =
                        query.root_weights.as_ref().is_some_and(|w| Arc::ptr_eq(w, shared));
                    if same_arc {
                        set(
                            i,
                            self.answer_weighted_with(
                                query, pool, &range, &snapshot, shared, scratch,
                            ),
                        );
                    } else {
                        set(i, self.answer_validated(query, pool, scratch));
                    }
                }
            }
            GroupKey::Solo { .. } => {
                for &i in &group.members {
                    let Some(query) = queries.get(i) else { continue };
                    set(i, self.answer_validated(query, pool, scratch));
                }
            }
        }
    }

    /// Validates `query` against one pinned pool generation — the same
    /// generation the caller will answer from, so bounds cannot shift
    /// between validation and selection under concurrent growth.
    fn validate(&self, query: &SeedQuery, pool: &RrCollection) -> Result<(), CoreError> {
        let err = |msg: String| Err(CoreError::InvalidParams(msg));
        let n = pool.num_nodes();
        if query.k == 0 && query.budget.is_none() {
            return err("k must be >= 1".into());
        }
        if let Some(r) = &query.range {
            if r.start > r.end || r.end as usize > pool.len() {
                return err(format!("range {r:?} out of bounds for a pool of {} sets", pool.len()));
            }
        }
        if let Some(budget) = query.budget {
            if !budget.is_finite() || budget <= 0.0 {
                return err(format!("budget {budget} is not finite and positive"));
            }
            if query.root_weights.is_some() {
                return err(
                    "budgeted queries run on uniform-root pools; per-node benefits fold into \
                     sampling (RootDist::benefit_weighted), not into the selection objective"
                        .into(),
                );
            }
            if let NodeCosts::PerNode(c) = &query.costs {
                if c.len() != n as usize {
                    return err(format!("{} costs for {n} nodes", c.len()));
                }
                if let Some((v, &bad)) =
                    c.iter().enumerate().find(|(_, c)| !c.is_finite() || **c <= 0.0)
                {
                    return err(format!("cost c({v}) = {bad} is not finite and positive"));
                }
            }
            // Distinct forced seeds must fit in the budget (duplicates
            // are selected and charged once, matching the selection).
            let mut forced_cost = 0.0f64;
            let mut charged: Vec<NodeId> = Vec::new();
            for &v in query.forced.iter().filter(|&&v| v < n) {
                if !charged.contains(&v) {
                    charged.push(v);
                    forced_cost += query.costs.cost(v);
                }
            }
            if forced_cost > budget {
                return err(format!(
                    "forced seeds cost {forced_cost}, overrunning the budget {budget}"
                ));
            }
        } else if matches!(query.costs, NodeCosts::PerNode(_)) {
            return err("per-node costs set without a budget".into());
        }
        if query.budget.is_none() && query.forced.len() > query.k.min(n as usize) {
            return err(format!(
                "{} forced seeds exceed the budget k = {}",
                query.forced.len(),
                query.k.min(n as usize)
            ));
        }
        for &v in query.forced.iter().chain(&query.excluded) {
            if v >= n {
                return err(format!("node {v} out of range (n = {n})"));
            }
        }
        if let Some(f) = query.forced.iter().find(|f| query.excluded.contains(f)) {
            return err(format!("node {f} is both forced and excluded"));
        }
        if let Some(w) = &query.root_weights {
            if w.len() != n as usize {
                return err(format!("{} weights for {n} nodes", w.len()));
            }
            if let Some((v, &bad)) = w.iter().enumerate().find(|(_, w)| !w.is_finite() || **w < 0.0)
            {
                return err(format!("weight b({v}) = {bad} is not finite and nonnegative"));
            }
        } else if query.topic.is_some() {
            return err("topic id set without root weights".into());
        }
        Ok(())
    }

    /// Answers a pre-validated query. Infallible and side-effect-free
    /// modulo the snapshot cache — the invariant the parallel batch path
    /// relies on.
    fn answer_validated(
        &self,
        query: &SeedQuery,
        pool: &RrCollection,
        scratch: &mut GreedyScratch,
    ) -> SeedAnswer {
        let range = query.range.clone().unwrap_or_else(|| pool.id_range());
        if let Some(budget) = query.budget {
            // Budgeted queries are unweighted, so they share the plain
            // snapshot cache — one frozen snapshot serves every
            // (budget, costs) pair over the range.
            let snapshot = self.snapshot_for(pool, &range);
            return self.answer_budgeted_with(query, budget, pool, &range, &snapshot, scratch);
        }
        match (&query.root_weights, query.topic) {
            (Some(weights), Some(topic)) => {
                // Repeated-topic fast path: frozen weighted gains
                // + frozen offsets, zero per-query init passes.
                let snapshot = self.weighted_snapshot_for(pool, &range, topic, weights);
                self.answer_weighted_with(query, pool, &range, &snapshot, weights, scratch)
            }
            (Some(weights), None) => {
                let len = (range.end - range.start) as u64;
                let constraints =
                    SeedConstraints { forced: &query.forced, excluded: &query.excluded };
                let r = CoverageView::build(pool, range.clone()).select_weighted(
                    query.k,
                    weights,
                    &constraints,
                    scratch,
                );
                let influence =
                    if len == 0 { 0.0 } else { self.gamma * r.covered_weight / len as f64 };
                SeedAnswer {
                    seeds: r.seeds,
                    covered: r.covered_weight,
                    influence_estimate: influence,
                    marginal_gains: r.marginal_gains,
                    range,
                }
            }
            (None, _) => {
                let snapshot = self.snapshot_for(pool, &range);
                self.answer_plain_with(query, pool, &range, &snapshot, scratch)
            }
        }
    }

    /// Answers a pre-validated unweighted query against an
    /// already-resolved plain snapshot of `range` — the shared tail of
    /// the per-query path and the planner's group execution. The
    /// snapshot lends its frozen offsets: a cache hit skips the
    /// O(range_len) view rebase too.
    fn answer_plain_with(
        &self,
        query: &SeedQuery,
        pool: &RrCollection,
        range: &Range<u32>,
        snapshot: &GainSnapshot,
        scratch: &mut GreedyScratch,
    ) -> SeedAnswer {
        let len = (range.end - range.start) as u64;
        let constraints = SeedConstraints { forced: &query.forced, excluded: &query.excluded };
        let r = snapshot.view(pool).select_from_snapshot_constrained(
            snapshot,
            query.k,
            &constraints,
            scratch,
        );
        let influence = r.influence_estimate(self.gamma, len);
        SeedAnswer {
            seeds: r.seeds,
            covered: r.covered as f64,
            influence_estimate: influence,
            marginal_gains: r.marginal_gains.iter().map(|&g| g as f64).collect(),
            range: range.clone(),
        }
    }

    /// Answers a pre-validated budgeted query against an
    /// already-resolved plain snapshot of `range`. Snapshots are
    /// cost-agnostic, so budgeted queries ride the same cache entries
    /// (and planner groups) as plain top-k queries; with uniform costs
    /// and `budget = k` the answer is bit-identical to
    /// [`SeedQueryEngine::answer`] on the cardinality query.
    fn answer_budgeted_with(
        &self,
        query: &SeedQuery,
        budget: f64,
        pool: &RrCollection,
        range: &Range<u32>,
        snapshot: &GainSnapshot,
        scratch: &mut GreedyScratch,
    ) -> SeedAnswer {
        let len = (range.end - range.start) as u64;
        let constraints = SeedConstraints { forced: &query.forced, excluded: &query.excluded };
        let r = snapshot.view(pool).select_budgeted_from_snapshot(
            snapshot,
            budget,
            &query.costs,
            &constraints,
            scratch,
        );
        let influence = if len == 0 { 0.0 } else { self.gamma * r.covered as f64 / len as f64 };
        SeedAnswer {
            seeds: r.seeds,
            covered: r.covered as f64,
            influence_estimate: influence,
            marginal_gains: r.marginal_gains.iter().map(|&g| g as f64).collect(),
            range: range.clone(),
        }
    }

    /// Answers a pre-validated topic-weighted query against an
    /// already-resolved weighted snapshot of `range`. `weights` must be
    /// the very vector the snapshot was resolved with (the callers
    /// guarantee it by `Arc` identity).
    fn answer_weighted_with(
        &self,
        query: &SeedQuery,
        pool: &RrCollection,
        range: &Range<u32>,
        snapshot: &WeightedGainSnapshot,
        weights: &Arc<[f64]>,
        scratch: &mut GreedyScratch,
    ) -> SeedAnswer {
        let len = (range.end - range.start) as u64;
        let constraints = SeedConstraints { forced: &query.forced, excluded: &query.excluded };
        let r = snapshot.view(pool).select_weighted_from_snapshot(
            snapshot,
            query.k,
            weights,
            &constraints,
            scratch,
        );
        let influence = if len == 0 { 0.0 } else { self.gamma * r.covered_weight / len as f64 };
        SeedAnswer {
            seeds: r.seeds,
            covered: r.covered_weight,
            influence_estimate: influence,
            marginal_gains: r.marginal_gains,
            range: range.clone(),
        }
    }

    /// The sealed-epoch signature of a range end in `pool`: how many
    /// epoch boundaries lie at or below it. Part of the plain cache key
    /// (see [`CacheKey`]). Boundaries are append-only across
    /// generations, so for any `end` within an older generation the
    /// signature agrees across every generation containing it — which is
    /// why cache entries are shared across generations.
    fn epoch_signature(pool: &RrCollection, end: u32) -> u32 {
        pool.epoch_boundaries().partition_point(|&b| b <= end) as u32
    }

    /// Decomposes `range` against the sealed epoch boundaries into
    /// maximal segments: `(segment, is_full_epoch)`. Full epochs freeze
    /// reusable snapshots; partial head/tail segments (unaligned starts,
    /// pending sets past the last boundary) are built per merge.
    fn epoch_segments(pool: &RrCollection, range: &Range<u32>) -> Vec<(Range<u32>, bool)> {
        let mut segments = Vec::new();
        let mut pos = range.start;
        let mut epoch_start = 0u32;
        for &bound in pool.epoch_boundaries() {
            let epoch = epoch_start..bound;
            epoch_start = bound;
            if epoch.end <= pos {
                continue;
            }
            if epoch.start >= range.end {
                break;
            }
            let seg = pos.max(epoch.start)..range.end.min(epoch.end);
            if seg.start < seg.end {
                let full = seg == epoch;
                pos = seg.end;
                segments.push((seg, full));
            }
        }
        if pos < range.end {
            segments.push((pos..range.end, false));
        }
        segments
    }

    /// Returns the frozen snapshot for `range`, from cache or by
    /// building it — directly for single-segment ranges, by merging
    /// per-epoch snapshots (frozen once each, themselves cached) for
    /// ranges spanning several epochs. Counts one query-level hit or
    /// miss per call.
    fn snapshot_for(&self, pool: &RrCollection, range: &Range<u32>) -> Arc<GainSnapshot> {
        let key = CacheKey::Plain {
            start: range.start,
            end: range.end,
            epochs: Self::epoch_signature(pool, range.end),
        };
        if let Some(CachedSnapshot::Plain(snap)) = self.cache.get(&key) {
            self.cache.note_snapshot_hit();
            return snap;
        }
        self.cache.note_snapshot_miss();
        let segments = Self::epoch_segments(pool, range);
        let built = if segments.iter().filter(|(_, full)| *full).count() == 0 || segments.len() <= 1
        {
            // No reusable epoch inside (or the range *is* one epoch):
            // build in one pass.
            Arc::new(GainSnapshot::build(&CoverageView::build(pool, range.clone())))
        } else {
            let parts: Vec<Arc<GainSnapshot>> = segments
                .iter()
                .map(|(seg, full)| {
                    if *full {
                        self.epoch_snapshot(pool, seg)
                    } else {
                        Arc::new(GainSnapshot::build(&CoverageView::build(pool, seg.clone())))
                    }
                })
                .collect();
            let refs: Vec<&GainSnapshot> = parts.iter().map(Arc::as_ref).collect();
            let merged = Arc::new(GainSnapshot::merge(&refs));
            self.cache.note_merge();
            merged
        };
        self.cache.insert(key, CachedSnapshot::Plain(Arc::clone(&built)));
        built
    }

    /// The frozen snapshot of one full epoch, from cache or built (and
    /// cached) now. Epoch lookups refresh LRU order but do not count as
    /// query-level hits/misses; builds count into `epochs_frozen`.
    fn epoch_snapshot(&self, pool: &RrCollection, epoch: &Range<u32>) -> Arc<GainSnapshot> {
        let key = CacheKey::Plain {
            start: epoch.start,
            end: epoch.end,
            epochs: Self::epoch_signature(pool, epoch.end),
        };
        if let Some(CachedSnapshot::Plain(snap)) = self.cache.get(&key) {
            return snap;
        }
        let built = Arc::new(GainSnapshot::build(&CoverageView::build(pool, epoch.clone())));
        self.cache.note_epoch_frozen();
        self.cache.insert(key, CachedSnapshot::Plain(Arc::clone(&built)));
        built
    }

    /// Freezes one just-sealed epoch's snapshot into the cache —
    /// [`Grower::extend`]'s publish-time pre-freeze, so the first query
    /// against a grown pool finds the new epoch already cached instead
    /// of paying a build on the serving path. Each epoch is sealed
    /// exactly once, so this builds unconditionally (counting into
    /// `epochs_frozen` like any epoch build).
    pub(crate) fn freeze_epoch(&self, pool: &RrCollection, epoch: &Range<u32>) {
        let key = CacheKey::Plain {
            start: epoch.start,
            end: epoch.end,
            epochs: Self::epoch_signature(pool, epoch.end),
        };
        let built = Arc::new(GainSnapshot::build(&CoverageView::build(pool, epoch.clone())));
        self.cache.note_epoch_frozen();
        self.cache.insert(key, CachedSnapshot::Plain(built));
    }

    /// The frozen weighted snapshot for `(range, topic)`, verified
    /// against the query's weight vector by `Arc` identity — an id
    /// collision with different weights degrades to a rebuild, never a
    /// wrong answer. Counts one weighted hit or miss per call.
    fn weighted_snapshot_for(
        &self,
        pool: &RrCollection,
        range: &Range<u32>,
        topic: u64,
        weights: &Arc<[f64]>,
    ) -> Arc<WeightedGainSnapshot> {
        let key = CacheKey::Weighted { start: range.start, end: range.end, topic };
        if let Some(CachedSnapshot::Weighted(snap, cached_weights)) = self.cache.get(&key) {
            if Arc::ptr_eq(&cached_weights, weights) {
                self.cache.note_weighted_hit();
                return snap;
            }
        }
        self.cache.note_weighted_miss();
        let built = Arc::new(WeightedGainSnapshot::build(
            &CoverageView::build(pool, range.clone()),
            weights,
        ));
        self.cache.insert(key, CachedSnapshot::Weighted(Arc::clone(&built), Arc::clone(weights)));
        built
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dssa, Params};
    use sns_diffusion::Model;
    use sns_graph::{gen, WeightModel};
    use sns_rrset::max_coverage_range;

    fn engine(sets: u64, seed: u64) -> SeedQueryEngine {
        let g = gen::erdos_renyi(300, 1800, seed).build(WeightModel::WeightedCascade).unwrap();
        let ctx = SamplingContext::new(&g, Model::IndependentCascade).with_seed(seed);
        SeedQueryEngine::sample(&ctx, sets)
    }

    #[test]
    fn engine_matches_direct_max_coverage() {
        let e = engine(2000, 1);
        for k in [1usize, 5, 20] {
            let ans = e.answer(&SeedQuery::top_k(k)).unwrap();
            let direct = max_coverage_range(&e.pool(), k, 0..2000);
            assert_eq!(ans.seeds, direct.seeds, "k = {k}");
            assert_eq!(ans.covered, direct.covered as f64);
        }
        // ranged query against the matching direct call
        let ans = e.answer(&SeedQuery::top_k(4).over_range(500..1500)).unwrap();
        let direct = max_coverage_range(&e.pool(), 4, 500..1500);
        assert_eq!(ans.seeds, direct.seeds);
        assert_eq!(ans.range, 500..1500);
    }

    #[test]
    fn batch_is_order_preserving_and_thread_invariant() {
        let e = engine(1500, 2);
        let queries: Vec<SeedQuery> = (1..=12)
            .map(|k| {
                let q = SeedQuery::top_k(k);
                if k % 2 == 0 {
                    q.over_range(0..750)
                } else {
                    q
                }
            })
            .collect();
        let sequential = e.answer_batch(&queries).unwrap();
        let parallel = engine(1500, 2).with_threads(4).answer_batch(&queries).unwrap();
        assert_eq!(sequential, parallel);
        for (k, ans) in (1..=12).zip(&sequential) {
            assert_eq!(ans.seeds.len(), k);
        }
    }

    #[test]
    fn snapshot_cache_serves_repeated_ranges() {
        let e = engine(1000, 3);
        let a = e.answer(&SeedQuery::top_k(3).over_range(0..500)).unwrap();
        let b = e.answer(&SeedQuery::top_k(3).over_range(0..500)).unwrap();
        assert_eq!(a, b);
        let s = e.stats();
        assert_eq!((s.snapshot_hits, s.snapshot_misses), (1, 1));
        e.answer(&SeedQuery::top_k(3)).unwrap();
        let s = e.stats();
        assert_eq!((s.snapshot_hits, s.snapshot_misses), (1, 2));
        assert!(s.cached_bytes > 0);
        assert_eq!(s.budget_bytes, 128 << 20);
        assert_eq!(s.evictions, 0);
    }

    #[test]
    fn growing_the_pool_freezes_only_the_new_epoch() {
        let g = gen::erdos_renyi(300, 1800, 8).build(WeightModel::WeightedCascade).unwrap();
        let ctx = SamplingContext::new(&g, Model::IndependentCascade).with_seed(8);
        let mut e = SeedQueryEngine::sample(&ctx, 1000);
        assert_eq!(e.pool().epoch_boundaries(), &[1000]);
        let old_epoch = e.answer(&SeedQuery::top_k(4).over_range(0..1000)).unwrap();

        e.extend(&ctx, 500);
        assert_eq!(e.pool().epoch_boundaries(), &[1000, 1500], "one new epoch, old one intact");
        // the grown pool is bit-identical to sampling 1500 up front
        let oneshot = SeedQueryEngine::sample(&ctx, 1500);
        let full = e.answer(&SeedQuery::top_k(4)).unwrap();
        assert_eq!(full, oneshot.answer(&SeedQuery::top_k(4)).unwrap());
        assert_eq!(full.range, 0..1500);
        // and the full-range answer merged the cached old epoch with one
        // newly frozen epoch instead of rebuilding from scratch
        let s = e.stats();
        assert_eq!(s.epochs_frozen, 1, "only the new epoch was frozen");
        assert_eq!(s.merges, 1);
        // the pre-growth snapshot still serves its range: pure cache hit
        let hits_before = s.snapshot_hits;
        assert_eq!(e.answer(&SeedQuery::top_k(4).over_range(0..1000)).unwrap(), old_epoch);
        let s = e.stats();
        assert_eq!(s.snapshot_hits, hits_before + 1, "extension must not invalidate old epochs");
        assert_eq!(s.epochs_frozen, 1);
    }

    #[test]
    fn empty_batch_returns_empty_without_touching_the_engine() {
        let e = engine(400, 12);
        let before = e.stats();
        assert_eq!(e.answer_batch(&[]).unwrap(), Vec::new());
        assert_eq!(e.answer_planned(&[]).unwrap(), Vec::new());
        // no cache traffic, no planner accounting, no snapshot builds
        assert_eq!(e.stats(), before);
        assert_eq!(before.snapshot_misses, 0);
        assert_eq!(before.planned_batches, 0);
    }

    #[test]
    fn planned_batch_matches_unplanned_and_counts_groups() {
        let e = engine(2000, 20);
        // 9 queries over 3 distinct plain keys: full ×3, 0..1000 ×4,
        // 500..1500 ×2 — plus constraint variations inside a group.
        let batch = vec![
            SeedQuery::top_k(3),
            SeedQuery::top_k(5).over_range(0..1000),
            SeedQuery::top_k(7),
            SeedQuery::top_k(4).over_range(0..1000).with_excluded(vec![2]),
            SeedQuery::top_k(2).over_range(500..1500),
            SeedQuery::top_k(6).over_range(0..1000).with_forced(vec![1]),
            SeedQuery::top_k(9),
            SeedQuery::top_k(1).over_range(0..1000),
            SeedQuery::top_k(8).over_range(500..1500),
        ];
        let unplanned = e.answer_batch(&batch).unwrap();
        let after_unplanned = e.stats();
        assert_eq!(
            (after_unplanned.snapshot_hits, after_unplanned.snapshot_misses),
            (6, 3),
            "unplanned: every query pays its own lookup"
        );
        let planned = e.answer_planned(&batch).unwrap();
        assert_eq!(planned, unplanned);
        let s = e.stats();
        assert_eq!(s.planned_batches, 1);
        assert_eq!(s.planner_groups, 3);
        assert_eq!(s.planner_builds_saved, 6, "9 queries over 3 shared snapshots");
        // the planned pass resolved each snapshot once: 3 lookups total
        // (all hits — the unplanned pass populated the cache), not 9
        assert_eq!(s.snapshot_hits - after_unplanned.snapshot_hits, 3, "{s:?}");
        assert_eq!(s.snapshot_misses, after_unplanned.snapshot_misses);
        // planned execution is thread-invariant too
        let planned4 = engine(2000, 20).with_threads(4).answer_planned(&batch).unwrap();
        assert_eq!(planned4, unplanned);
    }

    #[test]
    fn planned_topic_groups_share_and_breaches_degrade_gracefully() {
        let e = engine(1500, 21);
        let weights: Arc<[f64]> = (0..300).map(|v| if v % 3 == 0 { 2.0 } else { 0.0 }).collect();
        let same_topic_other_arc: Arc<[f64]> = weights.to_vec().into();
        let batch = vec![
            SeedQuery::top_k(4).with_root_weights(weights.clone()).with_topic(5),
            SeedQuery::top_k(6).with_root_weights(weights.clone()).with_topic(5),
            // same topic id, different Arc: the contract breach must fall
            // back to the per-query path, never produce a wrong answer
            SeedQuery::top_k(6).with_root_weights(same_topic_other_arc).with_topic(5),
            // no topic id: a solo group, per-query weighted path
            SeedQuery::top_k(4).with_root_weights(weights.clone()),
        ];
        let planned = e.answer_planned(&batch).unwrap();
        let unplanned = e.answer_batch(&batch).unwrap();
        assert_eq!(planned, unplanned);
        assert_eq!(planned[1], e.answer(&batch[1]).unwrap());
        let s = e.stats();
        // groups: {topic 5} ×3 members + solo — builds saved only counts
        // the shareable group's extra members
        assert_eq!(s.planner_groups, 2);
        assert_eq!(s.planner_builds_saved, 2);
    }

    #[test]
    fn forced_and_excluded_seeds_respected() {
        let e = engine(1200, 4);
        let plain = e.answer(&SeedQuery::top_k(5)).unwrap();
        let star = plain.seeds[0];
        let without = e.answer(&SeedQuery::top_k(5).with_excluded(vec![star])).unwrap();
        assert!(!without.seeds.contains(&star));
        assert!(without.covered <= plain.covered);
        let forced = e.answer(&SeedQuery::top_k(5).with_forced(vec![7, 9])).unwrap();
        assert_eq!(&forced.seeds[..2], &[7, 9]);
        assert_eq!(forced.seeds.len(), 5);
    }

    #[test]
    fn weighted_query_targets_the_group() {
        // Weight only nodes 0..30: the engine must report targeted
        // influence ≤ the group mass and pick seeds covering it.
        let e = engine(3000, 5);
        let mut w = vec![0.0f64; 300];
        for slot in w.iter_mut().take(30) {
            *slot = 1.0;
        }
        let ans = e.answer(&SeedQuery::top_k(5).with_root_weights(w.clone())).unwrap();
        assert_eq!(ans.seeds.len(), 5);
        // Γ_query = 30, estimate uses the engine's Γ = n with the
        // weighted coverage — bounded by the actual group reach
        assert!(ans.influence_estimate <= 30.0 * 1.5, "Î_T = {}", ans.influence_estimate);
        assert!(ans.covered > 0.0);
    }

    #[test]
    fn validation_rejects_malformed_queries() {
        let e = engine(500, 6);
        assert!(e.answer(&SeedQuery::top_k(0)).is_err());
        assert!(e.answer(&SeedQuery::top_k(1).over_range(0..501)).is_err());
        #[allow(clippy::reversed_empty_ranges)]
        let backwards = SeedQuery::top_k(1).over_range(10..5);
        assert!(e.answer(&backwards).is_err());
        assert!(e.answer(&SeedQuery::top_k(1).with_forced(vec![1, 2])).is_err());
        assert!(e.answer(&SeedQuery::top_k(1).with_forced(vec![300])).is_err());
        assert!(e
            .answer(&SeedQuery::top_k(3).with_forced(vec![5]).with_excluded(vec![5]))
            .is_err());
        assert!(e.answer(&SeedQuery::top_k(1).with_root_weights(vec![1.0; 3])).is_err());
        assert!(e.answer(&SeedQuery::top_k(1).with_root_weights(vec![-1.0; 300])).is_err());
        // a batch with one bad query fails closed, naming the query
        let batch = [SeedQuery::top_k(1), SeedQuery::top_k(0)];
        let err = e.answer_batch(&batch).unwrap_err().to_string();
        assert!(err.contains("query 1"), "{err}");
    }

    #[test]
    fn validation_rejects_malformed_budgeted_queries() {
        let e = engine(500, 6);
        assert!(e.answer(&SeedQuery::budgeted(f64::NAN)).is_err());
        assert!(e.answer(&SeedQuery::budgeted(f64::INFINITY)).is_err());
        assert!(e.answer(&SeedQuery::budgeted(0.0)).is_err());
        assert!(e.answer(&SeedQuery::budgeted(-2.0)).is_err());
        // per-node costs without a budget are meaningless
        let costs = NodeCosts::per_node(vec![1.0; 300].into());
        assert!(e.answer(&SeedQuery::top_k(3).with_costs(costs.clone())).is_err());
        // budgets and root weights don't compose (benefits fold into
        // sampling, not into the selection objective)
        assert!(e.answer(&SeedQuery::budgeted(3.0).with_root_weights(vec![1.0; 300])).is_err());
        // cost table must be one finite positive cost per node
        let short = NodeCosts::per_node(vec![1.0; 3].into());
        assert!(e.answer(&SeedQuery::budgeted(3.0).with_costs(short)).is_err());
        let bad = NodeCosts::per_node(
            (0..300).map(|v| if v == 7 { -1.0 } else { 1.0 }).collect::<Vec<_>>().into(),
        );
        assert!(e.answer(&SeedQuery::budgeted(3.0).with_costs(bad)).is_err());
        // forced seeds alone must fit the budget
        assert!(e.answer(&SeedQuery::budgeted(1.5).with_forced(vec![1, 2])).is_err());
        // ...but duplicates are charged once, like selection charges them
        assert!(e.answer(&SeedQuery::budgeted(1.5).with_forced(vec![1, 1])).is_ok());
        // well-formed budgeted queries pass
        assert!(e.answer(&SeedQuery::budgeted(3.0).with_costs(costs)).is_ok());
    }

    #[test]
    fn budgeted_query_matches_direct_selection() {
        let e = engine(2000, 30);
        let costs: Arc<[f64]> = (0..300u32).map(|v| 0.5 + f64::from(v % 7)).collect();
        for budget in [0.5, 4.0, 12.5] {
            let q = SeedQuery::budgeted(budget).with_costs(NodeCosts::per_node(costs.clone()));
            let ans = e.answer(&q).unwrap();
            let pool = e.pool();
            let view = CoverageView::build(&pool, 0..2000);
            let mut scratch = GreedyScratch::new();
            let direct =
                view.select_budgeted(budget, &q.costs, &SeedConstraints::none(), &mut scratch);
            assert_eq!(ans.seeds, direct.seeds, "budget = {budget}");
            assert_eq!(ans.covered, direct.covered as f64);
            assert_eq!(
                ans.marginal_gains,
                direct.marginal_gains.iter().map(|&g| g as f64).collect::<Vec<_>>()
            );
            // Î = Γ · Cov/|R| with Γ = n = 300 over 2000 sets
            assert_eq!(ans.influence_estimate, 300.0 * direct.covered as f64 / 2000.0);
        }
        // ranged budgeted query against the matching direct call
        let q = SeedQuery::budgeted(6.0)
            .with_costs(NodeCosts::per_node(costs.clone()))
            .over_range(500..1500);
        let ans = e.answer(&q).unwrap();
        let pool = e.pool();
        let view = CoverageView::build(&pool, 500..1500);
        let direct = view.select_budgeted(
            6.0,
            &q.costs,
            &SeedConstraints::none(),
            &mut GreedyScratch::new(),
        );
        assert_eq!(ans.seeds, direct.seeds);
        assert_eq!(ans.range, 500..1500);
    }

    #[test]
    fn budgeted_uniform_costs_degenerate_to_top_k() {
        // Uniform costs + budget = k must be bit-identical to the plain
        // cardinality query — same seeds, same floats, same everything.
        let e = engine(1500, 31);
        let e4 = engine(1500, 31).with_threads(4);
        for k in [1usize, 4, 9] {
            for range in [None, Some(0..750u32), Some(300..1100u32)] {
                let mut topk = SeedQuery::top_k(k);
                let mut budgeted = SeedQuery::budgeted(k as f64);
                if let Some(r) = range.clone() {
                    topk = topk.over_range(r.clone());
                    budgeted = budgeted.over_range(r);
                }
                let expected = e.answer(&topk).unwrap();
                assert_eq!(e.answer(&budgeted).unwrap(), expected, "k = {k}, {range:?}");
                assert_eq!(e4.answer(&budgeted).unwrap(), expected, "4 threads");
            }
        }
        // constraints ride along unchanged
        let topk = SeedQuery::top_k(6).with_forced(vec![3]).with_excluded(vec![0, 11]);
        let budgeted = SeedQuery::budgeted(6.0).with_forced(vec![3]).with_excluded(vec![0, 11]);
        assert_eq!(e.answer(&budgeted).unwrap(), e.answer(&topk).unwrap());
    }

    #[test]
    fn planned_budgeted_batches_group_with_plain_queries() {
        let e = engine(2000, 32);
        let costs: Arc<[f64]> = (0..300u32).map(|v| 1.0 + f64::from(v % 3)).collect();
        let batch = vec![
            SeedQuery::top_k(3),
            SeedQuery::budgeted(4.0),
            SeedQuery::budgeted(6.0)
                .with_costs(NodeCosts::per_node(costs.clone()))
                .over_range(0..1000),
            SeedQuery::top_k(5).over_range(0..1000),
            SeedQuery::budgeted(2.5).with_costs(NodeCosts::per_node(costs)),
        ];
        let unplanned = e.answer_batch(&batch).unwrap();
        let planned = e.answer_planned(&batch).unwrap();
        assert_eq!(planned, unplanned);
        for (q, a) in batch.iter().zip(&planned) {
            assert_eq!(a, &e.answer(q).unwrap(), "planned ≡ per-query");
        }
        let s = e.stats();
        // budgeted queries share the plain snapshot groups: full range
        // {0, 1, 4} and 0..1000 {2, 3} — two groups, three builds saved
        assert_eq!(s.planner_groups, 2);
        assert_eq!(s.planner_builds_saved, 3);
        // planned execution is thread-invariant
        let planned4 = engine(2000, 32).with_threads(4).answer_planned(&batch).unwrap();
        assert_eq!(planned4, unplanned);
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sns-engine-store-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn poisoned_mutexes_do_not_wedge_the_engine() {
        let g = gen::erdos_renyi(300, 1800, 9).build(WeightModel::WeightedCascade).unwrap();
        let ctx = SamplingContext::new(&g, Model::IndependentCascade).with_seed(9);
        let e = SeedQueryEngine::sample(&ctx, 600);
        let baseline = e.answer(&SeedQuery::top_k(3)).unwrap();
        // Poison both writer-side mutexes the way a crashed worker
        // would: panic while holding the lock.
        fn poison<T>(m: &Mutex<T>) {
            let crash = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _guard = m.lock().unwrap();
                panic!("worker dies holding the lock");
            }));
            assert!(crash.is_err());
            assert!(m.is_poisoned());
        }
        poison(&e.cache.writer);
        poison(&e.writer);
        // the engine still answers — bit-identically — and every
        // mutex-crossing entry point stays usable
        assert_eq!(e.answer(&SeedQuery::top_k(3)).unwrap(), baseline);
        assert!(e.answer_batch(&[SeedQuery::top_k(2), SeedQuery::top_k(4)]).is_ok());
        let _ = e.stats();
        let mut e = e.with_cache_budget(1 << 20);
        assert_eq!(e.answer(&SeedQuery::top_k(3)).unwrap(), baseline);
        // growth recovers the poisoned writer mutex too: the directory
        // and sample cursor were only mutated after fallible work
        let grown = e.extend(&ctx, 100);
        assert_eq!(grown.seal().epoch(), Some(600..700));
        assert_eq!(grown.pool_len(), 700);
        assert_eq!(e.generation(), 1);
    }

    #[test]
    fn grower_reports_seal_outcome_and_generation() {
        let g = gen::erdos_renyi(300, 1800, 40).build(WeightModel::WeightedCascade).unwrap();
        let ctx = SamplingContext::new(&g, Model::IndependentCascade).with_seed(40);
        let mut e = SeedQueryEngine::sample(&ctx, 500);
        assert_eq!(e.generation(), 0);
        let grown = e.extend(&ctx, 250);
        assert_eq!(grown.generation(), 1);
        assert_eq!(grown.seal().epoch(), Some(500..750));
        assert_eq!(grown.pool_len(), 750);
        assert_eq!(e.generation(), 1);
        // nothing pending: no epoch sealed, no generation churn
        let noop = e.extend(&ctx, 0);
        assert_eq!(noop.seal().epoch(), None);
        assert_eq!(noop.generation(), 1);
        assert_eq!(noop.pool_len(), 750);
        assert_eq!(e.generation(), 1);
    }

    #[test]
    fn pinned_pools_survive_concurrent_growth() {
        let g = gen::erdos_renyi(300, 1800, 41).build(WeightModel::WeightedCascade).unwrap();
        let ctx = SamplingContext::new(&g, Model::IndependentCascade).with_seed(41);
        let e = SeedQueryEngine::sample(&ctx, 1000);
        let pool0 = e.pool();
        let before = e.answer(&SeedQuery::top_k(4).over_range(0..1000)).unwrap();
        // growth needs only &self: serving handles keep answering while
        // the grower publishes the next generation
        let grown = e.grower().extend(&ctx, 500);
        assert_eq!(grown.generation(), 1);
        assert_eq!(pool0.len(), 1000, "a pinned pool is immutable forever");
        assert_eq!(e.pool().len(), 1500);
        // the superseded generation stays reachable while pinned
        assert_eq!(e.directory().pin_generation(0).map(|p| p.len()), Some(1000));
        // and prefix answers are unchanged by the publish
        assert_eq!(e.answer(&SeedQuery::top_k(4).over_range(0..1000)).unwrap(), before);
    }

    #[test]
    fn store_refuses_a_permuted_benefit_vector() {
        let g = gen::erdos_renyi(300, 1800, 42).build(WeightModel::WeightedCascade).unwrap();
        let benefits: Vec<f64> = (0..300).map(|v| f64::from(v % 5 + 1)).collect();
        let mut permuted = benefits.clone();
        permuted.reverse();
        let ctx = SamplingContext::new(&g, Model::IndependentCascade)
            .with_seed(42)
            .with_benefit_weighted_roots(&benefits)
            .unwrap();
        let e = SeedQueryEngine::sample(&ctx, 300);
        let dir = temp_dir("permuted-benefits");
        e.save(&dir).unwrap();
        // same Γ (small-integer partial sums are exact in f64), same
        // graph, model and seed — only the content checksum can tell
        // the two vectors apart
        let wrong = SamplingContext::new(&g, Model::IndependentCascade)
            .with_seed(42)
            .with_benefit_weighted_roots(&permuted)
            .unwrap();
        assert_eq!(ctx.gamma().to_bits(), wrong.gamma().to_bits());
        let err = SeedQueryEngine::from_store(&dir, &wrong).unwrap_err();
        assert!(matches!(err, CoreError::Store(_)));
        assert!(err.to_string().contains("roots_checksum"), "{err}");
        // the original vector still loads and serves
        assert!(SeedQueryEngine::from_store(&dir, &ctx).is_ok());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_load_round_trip_preserves_answers_and_metadata() {
        let g = gen::erdos_renyi(300, 1800, 13).build(WeightModel::WeightedCascade).unwrap();
        let ctx = SamplingContext::new(&g, Model::IndependentCascade).with_seed(21);
        let run = Dssa::new(Params::new(4, 0.3, 0.1).unwrap()).run(&ctx).unwrap();
        let baked = SeedQueryEngine::sample(&ctx, 1200).with_run_metadata(&run);
        let dir = temp_dir("roundtrip");
        let stats = baked.save(&dir).unwrap();
        assert!(stats.epochs_written >= 1);

        let served = SeedQueryEngine::from_store(&dir, &ctx).unwrap();
        let queries: Vec<SeedQuery> = (1..=6).map(SeedQuery::top_k).collect();
        assert_eq!(served.answer_batch(&queries).unwrap(), baked.answer_batch(&queries).unwrap());
        // stopping-rule provenance survives the round trip
        let fp = served.fingerprint().unwrap();
        assert!(fp.meta.iter().any(|(k, v)| k == "stopping_rule" && !v.is_empty()), "{fp:?}");
        assert!(fp.meta.iter().any(|(k, _)| k == "rr_sets_main"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn extend_then_save_appends_only_new_epochs() {
        let g = gen::erdos_renyi(300, 1800, 14).build(WeightModel::WeightedCascade).unwrap();
        let ctx = SamplingContext::new(&g, Model::IndependentCascade).with_seed(22);
        let mut e = SeedQueryEngine::sample(&ctx, 800);
        let dir = temp_dir("extend");
        e.save(&dir).unwrap();
        e.extend(&ctx, 400);
        let stats = e.save(&dir).unwrap();
        assert_eq!((stats.epochs_reused, stats.epochs_written), (1, 1));

        let mut served = SeedQueryEngine::from_store(&dir, &ctx).unwrap();
        assert_eq!(served.pool().epoch_boundaries(), e.pool().epoch_boundaries());
        assert_eq!(
            served.answer(&SeedQuery::top_k(5)).unwrap(),
            e.answer(&SeedQuery::top_k(5)).unwrap()
        );
        // the loaded engine continues the deterministic sample stream
        served.extend(&ctx, 300);
        let oneshot = SeedQueryEngine::sample(&ctx, 1500);
        assert_eq!(
            served.answer(&SeedQuery::top_k(5)).unwrap(),
            oneshot.answer(&SeedQuery::top_k(5)).unwrap()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovered_prefix_plus_extend_reproduces_the_pool() {
        let g = gen::erdos_renyi(300, 1800, 18).build(WeightModel::WeightedCascade).unwrap();
        let ctx = SamplingContext::new(&g, Model::IndependentCascade).with_seed(25);
        let mut e = SeedQueryEngine::sample(&ctx, 500);
        e.extend(&ctx, 500); // two epochs on disk
        let dir = temp_dir("recover");
        e.save(&dir).unwrap();
        std::fs::remove_file(dir.join("epoch-00001.rr")).unwrap();

        assert!(matches!(SeedQueryEngine::from_store(&dir, &ctx), Err(CoreError::Store(_))));
        let (mut rec, recovery) = SeedQueryEngine::from_store_recovering(&dir, &ctx).unwrap();
        let Recovery::Recovered { epochs_lost, sets_lost } = recovery else {
            panic!("expected a recovery, got {recovery:?}")
        };
        assert_eq!((epochs_lost, sets_lost), (1, 500));
        // recovered-prefix answers ≡ a pool sampled to that prefix
        let prefix = SeedQueryEngine::sample(&ctx, 500);
        assert_eq!(
            rec.answer(&SeedQuery::top_k(4)).unwrap(),
            prefix.answer(&SeedQuery::top_k(4)).unwrap()
        );
        // resampling exactly the lost tail restores the full pool
        rec.extend(&ctx, sets_lost);
        assert_eq!(
            rec.answer(&SeedQuery::top_k(4)).unwrap(),
            e.answer(&SeedQuery::top_k(4)).unwrap()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn from_store_refuses_a_different_sampling_identity() {
        let g = gen::erdos_renyi(300, 1800, 15).build(WeightModel::WeightedCascade).unwrap();
        let ctx = SamplingContext::new(&g, Model::IndependentCascade).with_seed(23);
        let e = SeedQueryEngine::sample(&ctx, 300);
        let dir = temp_dir("refuse");
        e.save(&dir).unwrap();
        let wrong_seed = SamplingContext::new(&g, Model::IndependentCascade).with_seed(24);
        assert!(matches!(SeedQueryEngine::from_store(&dir, &wrong_seed), Err(CoreError::Store(_))));
        let wrong_model = SamplingContext::new(&g, Model::LinearThreshold).with_seed(23);
        assert!(matches!(
            SeedQueryEngine::from_store(&dir, &wrong_model),
            Err(CoreError::Store(_))
        ));
        let g2 = gen::erdos_renyi(300, 1800, 99).build(WeightModel::WeightedCascade).unwrap();
        let wrong_graph = SamplingContext::new(&g2, Model::IndependentCascade).with_seed(23);
        assert!(matches!(
            SeedQueryEngine::from_store(&dir, &wrong_graph),
            Err(CoreError::Store(_))
        ));
        // the right context still loads
        assert!(SeedQueryEngine::from_store(&dir, &ctx).is_ok());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn from_pool_engines_cannot_save() {
        let g = gen::erdos_renyi(50, 200, 17).build(WeightModel::WeightedCascade).unwrap();
        let ctx = SamplingContext::new(&g, Model::IndependentCascade);
        let mut pool = sns_rrset::RrCollection::new(50);
        pool.extend_sequential(&mut ctx.sampler(0), 0, 50);
        let e = SeedQueryEngine::from_pool(pool, 50.0);
        assert!(e.fingerprint().is_none());
        // fails before touching the filesystem — the path is never created
        let never = std::env::temp_dir().join("sns-engine-store-never-created");
        assert!(matches!(e.save(&never), Err(CoreError::InvalidParams(_))));
        assert!(!never.exists());
    }

    #[test]
    fn engine_reuses_a_solver_sized_pool() {
        // The intended deployment: D-SSA sizes the pool, the engine
        // serves from a pool of that size and reproduces the solution.
        let g = gen::erdos_renyi(300, 1800, 7).build(WeightModel::WeightedCascade).unwrap();
        let params = Params::new(5, 0.3, 0.1).unwrap();
        let ctx = SamplingContext::new(&g, Model::IndependentCascade).with_seed(11);
        let run = Dssa::new(params).run(&ctx).unwrap();
        let e = SeedQueryEngine::sample(&ctx, run.rr_sets_main);
        // D-SSA selected over its find half [0, main/2)
        let ans =
            e.answer(&SeedQuery::top_k(5).over_range(0..run.rr_sets_main as u32 / 2)).unwrap();
        assert_eq!(ans.seeds, run.seeds, "engine must reproduce the solver's cover");
    }
}
