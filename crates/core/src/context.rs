//! The sampling context: everything an RIS algorithm needs besides its
//! `(k, ε, δ)` parameters.

use sns_diffusion::rng::seed_for;
use sns_diffusion::{Model, RootDist, RrSampler};
use sns_graph::{Graph, GraphError};

/// Bundles graph, diffusion model, root distribution, master seed and
/// parallelism for one algorithm run.
///
/// With [`RootDist::Uniform`] the algorithms solve classic influence
/// maximization; with weighted roots (WRIS) the identical code solves
/// targeted viral marketing — only the universe mass `Γ` and the
/// root-draw distribution change (§7.3.1 of the paper).
#[derive(Clone)]
pub struct SamplingContext<'g> {
    graph: &'g Graph,
    model: Model,
    roots: RootDist,
    /// Sum of the top-k weights is cached lazily per k; for uniform roots
    /// it is simply k. Stored descending.
    sorted_weights_desc: Option<Vec<f64>>,
    seed: u64,
    threads: usize,
}

impl<'g> SamplingContext<'g> {
    /// Context with uniform roots, seed 0 and sequential sampling (the
    /// paper's single-threaded setting).
    pub fn new(graph: &'g Graph, model: Model) -> Self {
        SamplingContext {
            graph,
            model,
            roots: RootDist::Uniform,
            sorted_weights_desc: None,
            seed: 0,
            threads: 1,
        }
    }

    /// Sets the master seed (all sampling derives from it).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the worker-thread count used when growing RR pools.
    /// Parallelism never changes results (per-index RNG streams).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Switches to weighted (WRIS) root sampling for targeted viral
    /// marketing. `weights[v]` is the relevance `b(v) ≥ 0` of node `v`;
    /// the slice length must equal the node count.
    pub fn with_weighted_roots(mut self, weights: &[f64]) -> Result<Self, GraphError> {
        assert_eq!(
            weights.len(),
            self.graph.num_nodes() as usize,
            "weight vector length must equal the node count"
        );
        self.roots = RootDist::weighted(weights)?;
        let mut sorted: Vec<f64> = weights.to_vec();
        sorted.sort_unstable_by(|a, b| b.partial_cmp(a).expect("weights validated finite"));
        self.sorted_weights_desc = Some(sorted);
        Ok(self)
    }

    /// Switches to benefit-proportional (CTVM-style) root sampling via
    /// the prefix-sum inverse CDF — the sampler backing budgeted,
    /// cost-aware campaigns where `b(v)` is the benefit of influencing
    /// node `v`. Semantically equivalent to [`Self::with_weighted_roots`]
    /// (same Γ, same cap ratio, a different draw mechanism with the same
    /// one-draw-per-sample determinism contract). The slice length must
    /// equal the node count.
    pub fn with_benefit_weighted_roots(mut self, benefits: &[f64]) -> Result<Self, GraphError> {
        assert_eq!(
            benefits.len(),
            self.graph.num_nodes() as usize,
            "benefit vector length must equal the node count"
        );
        self.roots = RootDist::benefit_weighted(benefits)?;
        let mut sorted: Vec<f64> = benefits.to_vec();
        sorted.sort_unstable_by(|a, b| b.partial_cmp(a).expect("benefits validated finite"));
        self.sorted_weights_desc = Some(sorted);
        Ok(self)
    }

    /// The graph.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// The diffusion model.
    pub fn model(&self) -> Model {
        self.model
    }

    /// The root distribution.
    pub fn roots(&self) -> &RootDist {
        &self.roots
    }

    /// Master seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Worker threads for pool growth.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Universe mass Γ: `n` for uniform roots, `Σ_v b(v)` for WRIS.
    pub fn gamma(&self) -> f64 {
        self.roots.gamma(self.graph)
    }

    /// Content checksum of the root weight/benefit vector, `None` for
    /// uniform roots. Recorded in pool-store fingerprints so a persisted
    /// weighted pool refuses to reload under a different vector — even
    /// one whose total Γ happens to match.
    pub fn roots_checksum(&self) -> Option<u64> {
        self.roots.content_checksum()
    }

    /// Worst-case `Γ / OPT_k` used to cap sample counts (`Nmax`):
    /// `n/k` for IM (`OPT_k ≥ k`: seeds influence themselves), and
    /// `Γ / Σ(top-k weights)` for the weighted universe (seeding the k
    /// heaviest nodes secures their own weight).
    pub fn cap_ratio(&self, k: usize) -> f64 {
        let n = self.graph.num_nodes() as usize;
        let k = k.min(n).max(1);
        match &self.sorted_weights_desc {
            None => n as f64 / k as f64,
            Some(sorted) => {
                let topk: f64 = sorted[..k].iter().sum();
                if topk <= 0.0 {
                    // all-zero top weights cannot happen (RootDist::weighted
                    // rejects zero-total vectors), but stay defensive
                    n as f64 / k as f64
                } else {
                    self.gamma() / topk
                }
            }
        }
    }

    /// Derives an independent seed for a named sample stream. Stream 0 is
    /// the main pool; SSA's per-iteration Estimate-Inf validation uses
    /// streams `1, 2, …` so its samples are independent of the pool.
    pub fn stream_seed(&self, stream: u64) -> u64 {
        seed_for(self.seed, stream)
    }

    /// Creates an RR sampler bound to the given stream.
    pub fn sampler(&self, stream: u64) -> RrSampler<'g> {
        RrSampler::with_config(self.graph, self.model, self.roots.clone(), self.stream_seed(stream))
    }
}

impl std::fmt::Debug for SamplingContext<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SamplingContext")
            .field("graph", &self.graph)
            .field("model", &self.model)
            .field("seed", &self.seed)
            .field("threads", &self.threads)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_graph::{GraphBuilder, WeightModel};

    fn g4() -> Graph {
        let mut b = GraphBuilder::new();
        b.add_arc(0, 1);
        b.set_num_nodes(4);
        b.build(WeightModel::Constant(0.5)).unwrap()
    }

    #[test]
    fn uniform_context_basics() {
        let g = g4();
        let ctx = SamplingContext::new(&g, Model::IndependentCascade).with_seed(5);
        assert_eq!(ctx.gamma(), 4.0);
        assert_eq!(ctx.cap_ratio(2), 2.0);
        assert_eq!(ctx.cap_ratio(100), 1.0); // k clamped to n
        assert_eq!(ctx.seed(), 5);
    }

    #[test]
    fn weighted_context_gamma_and_cap() {
        let g = g4();
        let ctx = SamplingContext::new(&g, Model::LinearThreshold)
            .with_weighted_roots(&[4.0, 3.0, 2.0, 1.0])
            .unwrap();
        assert_eq!(ctx.gamma(), 10.0);
        // top-2 = 7 → cap = 10/7
        assert!((ctx.cap_ratio(2) - 10.0 / 7.0).abs() < 1e-12);
        assert!((ctx.cap_ratio(4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn streams_are_independent() {
        let g = g4();
        let ctx = SamplingContext::new(&g, Model::IndependentCascade).with_seed(1);
        assert_ne!(ctx.stream_seed(0), ctx.stream_seed(1));
        let mut a = ctx.sampler(0);
        let mut b = ctx.sampler(1);
        let (mut ra, mut rb) = (Vec::new(), Vec::new());
        let mut differs = false;
        for i in 0..50 {
            let ma = a.sample(i, &mut ra);
            let mb = b.sample(i, &mut rb);
            if ma.root != mb.root {
                differs = true;
            }
        }
        assert!(differs, "streams 0 and 1 produced identical roots");
    }

    #[test]
    fn benefit_weighted_context_matches_weighted_semantics() {
        let g = g4();
        let ctx = SamplingContext::new(&g, Model::LinearThreshold)
            .with_benefit_weighted_roots(&[4.0, 3.0, 2.0, 1.0])
            .unwrap();
        assert_eq!(ctx.gamma(), 10.0);
        assert!((ctx.cap_ratio(2) - 10.0 / 7.0).abs() < 1e-12);
        assert!(matches!(ctx.roots(), sns_diffusion::RootDist::Benefit(_)));
        // zero-benefit nodes are never drawn as roots
        let mut sampler = SamplingContext::new(&g, Model::IndependentCascade)
            .with_benefit_weighted_roots(&[0.0, 1.0, 1.0, 0.0])
            .unwrap()
            .sampler(0);
        let mut rr = Vec::new();
        for i in 0..200 {
            let meta = sampler.sample(i, &mut rr);
            assert!(meta.root == 1 || meta.root == 2);
        }
    }

    #[test]
    #[should_panic(expected = "length must equal")]
    fn weight_length_checked() {
        let g = g4();
        let _ = SamplingContext::new(&g, Model::IndependentCascade).with_weighted_roots(&[1.0]);
    }
}
