//! The Dynamic Stop-and-Stare Algorithm — Algorithm 4 of the paper.

// Sanctioned wall-clock read: report-only elapsed-time stat (see lint-allow.toml).
#![allow(clippy::disallowed_methods)]

use std::time::Instant;

use sns_rrset::{max_coverage_with, GreedyScratch, RrCollection};

use crate::bounds::certificate::{Certificate, StopCondition, StoppingRule};
use crate::bounds::{self, upsilon};
use crate::{CoreError, Params, RunResult, SamplingContext};

/// Dynamic Stop-and-Stare: like [`crate::Ssa`] but with the precision
/// split `(ε₁, ε₂, ε₃)` computed *from the data* at every checkpoint, and
/// a single sample stream whose verification half is recycled into the
/// next iteration's find half.
///
/// At iteration `t` the stream's first `Λ·2^(t−1)` sets (`R_t`) feed
/// Max-Coverage and the next `Λ·2^(t−1)` sets (`R^c_t`) verify the
/// candidate. Both stopping checks are evaluated by the run's
/// [`Certificate`] (`bounds::certificate` — one audited code path shared
/// with SSA):
///
/// * **D1** `Cov_{R^c_t}(Ŝ_k) ≥ Λ₁` — the verify half carries enough
///   coverage for an (ε, δ/3tmax)-estimate of `I(Ŝ_k)` (stopping-rule
///   condition of Dagum et al.);
/// * **D2** `ε_t = (ε₁ + ε₂ + ε₁ε₂)(1 − 1/e − ε) + (1 − 1/e)ε₃ ≤ ε` with
///   `ε₁ = max(0, Î_t/Î^c_t − 1)` and ε₂/ε₃ depending on the selected
///   [`StoppingRule`] (`Params::rule`):
///   - [`StoppingRule::Conservative`] (default): the closed forms
///     `ε₂ = ε·√(Γ(1+ε)/(Λ·2^(t−1)·Î^c_t))`,
///     `ε₃ = ε·√(Γ(1+ε)(1−1/e−ε)/((1+ε/3)·Λ·2^(t−1)·Î^c_t))` — the
///     find-half size in the denominator, i.e. the repository's
///     historical (PR-3) rule, kept bit-exact;
///   - [`StoppingRule::DssaFix`]: ε₂ solved numerically from the
///     stopping-rule count `Cov_{R^c_t} ≥ (1+ε₂)·Υ(ε₂, δ/3tmax)` with
///     the analogous gap-adjusted ε₃ — the erratum-corrected anchor,
///     which demands strictly more evidence (never stops earlier than
///     the conservative rule; `docs/DERIVATIONS.md` §4 settles the
///     dispute and quantifies the gap at √Λ).
///
/// The final pool extension is clamped at `⌈Nmax⌉` — the doubling
/// schedule is not allowed to overshoot the nominal cap by up to 2× as
/// an earlier revision did.
///
/// D-SSA achieves the **type-2 minimum threshold** — the fewest samples
/// any RIS-framework algorithm can use — within a constant factor
/// (Theorem 6); empirically it needs no parameter tuning, which is why it
/// dominates SSA on every network in the paper's §7.
#[derive(Debug, Clone)]
pub struct Dssa {
    params: Params,
}

/// One stop-and-stare checkpoint of a D-SSA run, as recorded by
/// [`Dssa::run_traced`]: the dynamically derived precision split and the
/// realized `ε_t` that condition D2 compares against ε.
#[derive(Debug, Clone, PartialEq)]
pub struct DssaIteration {
    /// Iteration index `t` (1-based).
    pub t: u32,
    /// Pool size `|R_t| + |R^c_t| = Λ·2^t` at this checkpoint (clamped
    /// at `⌈Nmax⌉` on a cap-hitting final iteration).
    pub pool_size: u64,
    /// Influence estimate from the find half.
    pub influence_find: f64,
    /// Influence estimate from the verify half (`None` while condition
    /// D1 — enough verify coverage — has not fired yet).
    pub influence_verify: Option<f64>,
    /// Dynamic `(ε₁, ε₂, ε₃)` (only once D1 holds). ε₁ is clamped at 0;
    /// ε₂/ε₃ follow [`DssaIteration::rule`].
    pub epsilons: Option<(f64, f64, f64)>,
    /// The realized `ε_t` checked against ε (only once D1 holds).
    pub eps_t: Option<f64>,
    /// The stopping rule this checkpoint was evaluated under.
    pub rule: StoppingRule,
}

impl Dssa {
    /// D-SSA for the given `(k, ε, δ)` — no further tuning exists, by
    /// design.
    pub fn new(params: Params) -> Self {
        Dssa { params }
    }

    /// The configured parameters.
    pub fn params(&self) -> Params {
        self.params
    }

    /// Runs D-SSA and returns the seed set with run statistics.
    pub fn run(&self, ctx: &SamplingContext<'_>) -> Result<RunResult, CoreError> {
        self.run_inner(ctx, None)
    }

    /// Like [`Dssa::run`], additionally recording every checkpoint's
    /// dynamic ε-split and realized `ε_t` — the §6 story made visible
    /// (see `examples/convergence.rs` in the repository root).
    pub fn run_traced(
        &self,
        ctx: &SamplingContext<'_>,
    ) -> Result<(RunResult, Vec<DssaIteration>), CoreError> {
        let mut trace = Vec::new();
        let result = self.run_inner(ctx, Some(&mut trace))?;
        Ok((result, trace))
    }

    fn run_inner(
        &self,
        ctx: &SamplingContext<'_>,
        mut trace: Option<&mut Vec<DssaIteration>>,
    ) -> Result<RunResult, CoreError> {
        let start = Instant::now();
        let n = ctx.graph().num_nodes() as u64;
        let k = self.params.k.min(n as usize);
        let eps = self.params.epsilon;
        let delta = self.params.delta;
        let gamma = ctx.gamma();

        let n_max = bounds::nmax(n, k as u64, eps, delta, ctx.cap_ratio(k));
        let t_max = bounds::max_iterations(n_max, eps, delta);
        let delta_iter = delta / (3.0 * f64::from(t_max));
        let lambda = upsilon(eps, delta_iter).ceil().max(1.0) as u64;
        // D1's Λ₁ threshold and D2's rule-dependent ε-split: one audited
        // code path shared with SSA.
        let cert = Certificate::dssa(self.params.rule, eps, delta_iter, gamma);
        // The last extension must not overshoot the nominal cap: the
        // schedule is clamped at ⌈Nmax⌉ sets (kept even so the find and
        // verify halves stay equal-sized). `as` saturates for the huge
        // Nmax of large instances, where the clamp never binds.
        let cap_sets = (n_max.ceil() as u64).max(2) & !1;

        let mut pool = RrCollection::new(ctx.graph().num_nodes());
        let mut sampler = ctx.sampler(0);
        // One selection scratch for the whole run: the per-round coverage
        // view's gain/heap/stamp buffers stay at high-water capacity.
        let mut cover_scratch = GreedyScratch::new();
        let mut scratch = Vec::new();
        let mut peak_bytes = 0u64;
        let mut coverage_first_met = None;
        let mut last = None;

        for t in 1..=t_max {
            let scheduled = 2 * lambda
                .checked_shl(t - 1)
                .expect("pool target overflow: Nmax bounds preclude this");
            let full = scheduled.min(cap_sets);
            let half = full / 2;
            let have = pool.len() as u64;
            if full > have {
                if ctx.threads() > 1 {
                    pool.extend_parallel(&sampler, have, full - have, ctx.threads());
                } else {
                    pool.extend_sequential(&mut sampler, have, full - have);
                }
            }
            peak_bytes = peak_bytes.max(pool.memory_bytes());

            // Find on the first half, verify on the second.
            let cover = max_coverage_with(&pool, k, 0..half as u32, &mut cover_scratch);
            let i_t = cover.influence_estimate(gamma, half);
            let cov_c =
                pool.coverage_of_range(&cover.seeds, half as u32..full as u32, &mut scratch);

            let mut stop = false;
            let mut record = DssaIteration {
                t,
                pool_size: full,
                influence_find: i_t,
                influence_verify: None,
                epsilons: None,
                eps_t: None,
                rule: cert.rule(),
            };
            if cert.coverage_met(cov_c) {
                // Condition D1 met: derive the dynamic ε-split under the
                // selected rule and check condition D2.
                coverage_first_met.get_or_insert(t);
                let check = cert.dssa_precision(i_t, cov_c, half);
                record.influence_verify = Some(check.i_verify);
                record.epsilons = Some((check.e1, check.e2, check.e3));
                record.eps_t = Some(check.eps_t);
                stop = check.satisfied;
            }
            if let Some(sink) = trace.as_deref_mut() {
                sink.push(record);
            }

            // Capped once the pool reaches the clamp bound (it can never
            // grow past `cap_sets`, so `full == cap_sets` means every
            // later iteration would rescan an unchanged pool) or Nmax.
            let hit_cap = full >= cap_sets || full as f64 >= n_max;
            let binding = if stop {
                if coverage_first_met == Some(t) {
                    StopCondition::Coverage
                } else {
                    StopCondition::Precision
                }
            } else {
                StopCondition::Cap
            };
            last = Some(RunResult {
                seeds: cover.seeds,
                influence_estimate: i_t,
                rr_sets_main: full,
                rr_sets_verify: 0, // the verify half is recycled, not extra
                iterations: t,
                hit_cap: hit_cap && !stop,
                stopping_rule: Some(cert.rule()),
                binding,
                wall_time: start.elapsed(),
                peak_pool_bytes: peak_bytes,
                total_edges_examined: pool.total_edges_examined(),
            });
            if stop || hit_cap {
                break;
            }
        }

        last.ok_or_else(|| CoreError::InvalidParams("no iterations executed".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::ONE_MINUS_INV_E;
    use sns_diffusion::Model;
    use sns_graph::{gen, Graph, GraphBuilder, WeightModel};

    fn dominated_graph() -> Graph {
        let mut b = GraphBuilder::new();
        for v in 1..60 {
            b.add_edge(0, v, 1.0);
        }
        for v in 1..59 {
            b.add_edge(v, v + 1, 0.05);
        }
        b.build(WeightModel::Provided).unwrap()
    }

    #[test]
    fn finds_the_dominating_seed() {
        let g = dominated_graph();
        let ctx = SamplingContext::new(&g, Model::IndependentCascade).with_seed(1);
        let r = Dssa::new(Params::new(1, 0.3, 0.1).unwrap()).run(&ctx).unwrap();
        assert_eq!(r.seeds, vec![0]);
        assert!(!r.hit_cap);
        assert!((r.influence_estimate - 60.0).abs() < 10.0, "Î = {}", r.influence_estimate);
        assert_eq!(r.rr_sets_verify, 0, "D-SSA recycles its verify half");
    }

    #[test]
    fn deterministic_and_thread_invariant() {
        let g = gen::erdos_renyi(400, 2400, 3).build(WeightModel::WeightedCascade).unwrap();
        let params = Params::new(5, 0.3, 0.1).unwrap();
        let r1 = Dssa::new(params)
            .run(&SamplingContext::new(&g, Model::LinearThreshold).with_seed(9).with_threads(1))
            .unwrap();
        let r2 = Dssa::new(params)
            .run(&SamplingContext::new(&g, Model::LinearThreshold).with_seed(9).with_threads(4))
            .unwrap();
        assert_eq!(r1.seeds, r2.seeds);
        assert_eq!(r1.rr_sets_main, r2.rr_sets_main);
    }

    #[test]
    fn uses_fewer_or_similar_samples_than_ssa() {
        // The headline claim (type-2 vs type-1 threshold): D-SSA's total
        // sample count should not exceed SSA's by more than a small
        // factor, and usually beats it.
        let g = gen::rmat(2000, 12_000, gen::RmatParams::GRAPH500, 7)
            .build(WeightModel::WeightedCascade)
            .unwrap();
        let params = Params::new(10, 0.3, 0.1).unwrap();
        let ctx = SamplingContext::new(&g, Model::LinearThreshold).with_seed(5);
        let d = Dssa::new(params).run(&ctx).unwrap();
        let s = crate::Ssa::new(params).run(&ctx).unwrap();
        assert!(
            d.rr_sets_total() <= 2 * s.rr_sets_total(),
            "D-SSA used {} sets vs SSA {}",
            d.rr_sets_total(),
            s.rr_sets_total()
        );
    }

    #[test]
    fn weighted_universe_supported() {
        // TVM through the same code path: weight only nodes 0..10.
        let g = gen::erdos_renyi(200, 1000, 2).build(WeightModel::WeightedCascade).unwrap();
        let mut w = vec![0.0f64; 200];
        for slot in w.iter_mut().take(10) {
            *slot = 1.0;
        }
        let ctx = SamplingContext::new(&g, Model::IndependentCascade)
            .with_seed(3)
            .with_weighted_roots(&w)
            .unwrap();
        let r = Dssa::new(Params::new(3, 0.3, 0.1).unwrap()).run(&ctx).unwrap();
        assert_eq!(r.seeds.len(), 3);
        // targeted influence can be at most Γ = 10
        assert!(r.influence_estimate <= 10.0 * 1.3);
    }

    #[test]
    fn traced_run_matches_plain_run_and_exposes_epsilons() {
        let g = gen::erdos_renyi(400, 2400, 3).build(WeightModel::WeightedCascade).unwrap();
        let params = Params::new(5, 0.3, 0.1).unwrap();
        let ctx = SamplingContext::new(&g, Model::LinearThreshold).with_seed(9);
        let plain = Dssa::new(params).run(&ctx).unwrap();
        let (traced, trace) = Dssa::new(params).run_traced(&ctx).unwrap();
        // identical up to wall-clock time
        assert_eq!(plain.seeds, traced.seeds);
        assert_eq!(plain.influence_estimate, traced.influence_estimate);
        assert_eq!(plain.rr_sets_main, traced.rr_sets_main);
        assert_eq!(plain.iterations, traced.iterations);
        assert_eq!(plain.total_edges_examined, traced.total_edges_examined);
        assert_eq!(trace.len() as u32, traced.iterations);
        // the final checkpoint must have fired D1 + D2 (no cap hit here)
        let last = trace.last().unwrap();
        assert!(!traced.hit_cap);
        let eps_t = last.eps_t.expect("D1 fired at the stopping iteration");
        assert!(eps_t <= 0.3, "stopping eps_t = {eps_t}");
        // Pin the Λ-corrected Algorithm-4 split: each passing checkpoint's
        // ε₂/ε₃ must equal the closed forms with the *find-half size*
        // Λ·2^(t−1) = pool_size/2 in the denominator. (The Λ-dropped
        // variant this repairs yields values √Λ ≈ 12× larger here.)
        let gamma = 400.0;
        let (eps, gap) = (0.3, ONE_MINUS_INV_E - 0.3);
        for r in &trace {
            let Some((_, e2, e3)) = r.epsilons else { continue };
            let half = r.pool_size as f64 / 2.0;
            let i_c = r.influence_verify.expect("epsilons imply D1 fired");
            let want_e2 = eps * (gamma * (1.0 + eps) / (half * i_c)).sqrt();
            let want_e3 =
                eps * (gamma * (1.0 + eps) * gap / ((1.0 + eps / 3.0) * half * i_c)).sqrt();
            assert!((e2 - want_e2).abs() < 1e-12, "e2 = {e2}, want {want_e2}");
            assert!((e3 - want_e3).abs() < 1e-12, "e3 = {e3}, want {want_e3}");
            assert!(e2 < eps / 5.0, "Λ-corrected e2 must be far below ε, got {e2}");
        }
        // ε₂, ε₃ must shrink monotonically across D1-passing checkpoints
        let passing: Vec<_> = trace.iter().filter_map(|r| r.epsilons).collect();
        for w in passing.windows(2) {
            assert!(w[1].1 <= w[0].1 * 1.5, "e2 did not trend down: {passing:?}");
        }
        // pool sizes double
        for w in trace.windows(2) {
            assert_eq!(w[1].pool_size, 2 * w[0].pool_size);
        }
    }

    #[test]
    fn k_equals_n_selects_everyone() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 0.5);
        b.add_edge(1, 2, 0.5);
        let g = b.build(WeightModel::Provided).unwrap();
        let ctx = SamplingContext::new(&g, Model::LinearThreshold).with_seed(2);
        let r = Dssa::new(Params::new(3, 0.3, 0.2).unwrap()).run(&ctx).unwrap();
        let mut s = r.seeds.clone();
        s.sort_unstable();
        assert_eq!(s, vec![0, 1, 2]);
    }
}
