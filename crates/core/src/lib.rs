//! Stop-and-Stare: optimal RIS sampling algorithms for influence
//! maximization.
//!
//! This crate implements the primary contribution of Nguyen, Thai & Dinh,
//! *"Stop-and-Stare: Optimal Sampling Algorithms for Viral Marketing in
//! Billion-scale Networks"* (SIGMOD 2016):
//!
//! * [`Ssa`] — the Stop-and-Stare Algorithm (their Algorithm 1): keeps
//!   doubling a pool of Reverse Reachable sets, and at each exponential
//!   checkpoint *stares*: runs Max-Coverage for a candidate seed set and
//!   checks two statistical stopping conditions (coverage threshold `Λ₁`
//!   and an independent [`estimate_inf`] validation). Meets a **type-1
//!   minimum threshold** of samples within a constant factor.
//! * [`Dssa`] — Dynamic Stop-and-Stare (their Algorithm 4): one sample
//!   stream split into a find half and a verify half per iteration, with
//!   the precision parameters `ε₁, ε₂, ε₃` derived *dynamically* from the
//!   observed estimates. Meets the stronger **type-2 minimum threshold**.
//! * [`bounds`] — the unified RIS framework of §3: the `Υ(ε,δ)` sample
//!   bound, the RIS thresholds of TIM/IMM (Eqs. 12–15), the sample cap
//!   `Nmax`, and the concentration inequalities behind them. Its
//!   [`bounds::certificate`] submodule is the runtime stopping-rule
//!   engine both algorithms consult — including the selectable
//!   [`StoppingRule`] (`Conservative` vs the erratum-anchored `DssaFix`)
//!   that settles the D2 dispute of `docs/DERIVATIONS.md` §4.
//! * [`SamplingContext`] — bundles graph, diffusion model, root
//!   distribution and seeding. With uniform roots the algorithms solve
//!   classic IM; with weighted roots (WRIS) they solve targeted viral
//!   marketing — the generalization used by the `sns-tvm` crate.
//! * [`SeedQueryEngine`] — the frozen-pool serving layer: seal one RR
//!   pool, snapshot its initial gains per queried slice, and answer
//!   batches of heterogeneous [`SeedQuery`]s (varying `k`, id ranges,
//!   forced/excluded seeds, per-query target weights) thread-parallel
//!   and bit-identical to direct Max-Coverage calls.
//! * [`planner`] — the serving front end in front of the engine: a
//!   batch planner ([`BatchPlan`]) grouping queries by the snapshot
//!   they share, and a bounded [`AdmissionQueue`] with priorities and
//!   virtual-time deadlines that rejects with a typed [`RejectReason`]
//!   instead of letting latency grow without bound.
//!
//! Both algorithms return `(1 − 1/e − ε)`-approximate seed sets with
//! probability at least `1 − δ`.
//!
//! # Example
//!
//! ```
//! use sns_graph::{gen::erdos_renyi, WeightModel};
//! use sns_diffusion::Model;
//! use sns_core::{Dssa, Params, SamplingContext};
//!
//! let g = erdos_renyi(300, 1800, 7).build(WeightModel::WeightedCascade).unwrap();
//! let ctx = SamplingContext::new(&g, Model::IndependentCascade).with_seed(42);
//! let params = Params::new(5, 0.3, 0.1).unwrap(); // k = 5, ε = 0.3, δ = 0.1
//! let result = Dssa::new(params).run(&ctx).unwrap();
//! assert_eq!(result.seeds.len(), 5);
//! assert!(result.influence_estimate > 0.0);
//! ```

//!
//! The repository-level pipeline walk-through (sampler → inverted
//! index → coverage view → gain snapshots → query engine) lives in
//! `docs/ARCHITECTURE.md` at the workspace root; the stopping-rule
//! math is derived in `docs/DERIVATIONS.md`.

#![warn(missing_docs)]

pub mod bounds;
pub mod planner;

mod cache;
mod context;
mod dssa;
mod engine;
mod error;
mod estimate_inf;
mod framework;
mod grower;
mod params;
mod result;
mod ssa;

pub use bounds::certificate::{Certificate, PrecisionCheck, StopCondition, StoppingRule};
pub use context::SamplingContext;
pub use dssa::{Dssa, DssaIteration};
pub use engine::{QueryStats, SeedAnswer, SeedQuery, SeedQueryEngine};
pub use error::CoreError;
pub use estimate_inf::{estimate_inf, estimate_inf_with_sink, EstimateInfOutcome, EstimateScratch};
pub use framework::{ris_fixed_pool, RisThresholds};
pub use grower::{Grower, GrowthOutcome};
pub use params::{Params, SsaEpsilons};
pub use planner::{
    AdmissionQueue, AdmissionStats, BatchPlan, GroupKey, Pending, PlanGroup, Priority, RejectReason,
};
pub use result::RunResult;
pub use ssa::Ssa;

// Persistence layer behind [`SeedQueryEngine::save`] /
// [`SeedQueryEngine::from_store`], the cost model of budgeted queries
// ([`SeedQuery::with_costs`]), and the grow-while-serving primitives
// ([`SeedQueryEngine::grower`], [`SeedQueryEngine::directory`]),
// re-exported so engine callers don't need a direct `sns_rrset`
// dependency to handle their outcomes.
pub use sns_rrset::{
    EpochDirectory, NodeCosts, PoolStore, Recovery, SaveStats, SealOutcome, StoreError,
    StoreFingerprint,
};
