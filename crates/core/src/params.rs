//! Algorithm parameters: the `(k, ε, δ)` triple, the stopping-rule
//! selection, and SSA's precision split `(ε₁, ε₂, ε₃)`.

use crate::bounds::certificate::StoppingRule;
use crate::bounds::ONE_MINUS_INV_E;
use crate::CoreError;

/// The `(k, ε, δ)` configuration shared by every RIS algorithm: find `k`
/// seeds whose influence is within `(1 − 1/e − ε)` of optimal with
/// probability at least `1 − δ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Params {
    /// Seed-set budget `k ≥ 1`.
    pub k: usize,
    /// Accuracy `ε ∈ (0, 1 − 1/e)` — beyond `1 − 1/e` the guarantee is
    /// vacuous.
    pub epsilon: f64,
    /// Failure probability `δ ∈ (0, 1)`. The paper's experiments use
    /// `δ = 1/n`.
    pub delta: f64,
    /// Which reading of the D2 precision anchor the stopping engine
    /// certifies against (`docs/DERIVATIONS.md` §4). Defaults to
    /// [`StoppingRule::Conservative`], the repository's historical rule;
    /// select [`StoppingRule::DssaFix`] via
    /// [`Params::with_stopping_rule`] for the erratum-corrected
    /// constants. Fixed-schedule baselines (IMM/TIM) ignore it.
    pub rule: StoppingRule,
}

impl Params {
    /// Validates and constructs a parameter triple (with the default
    /// [`StoppingRule::Conservative`]).
    pub fn new(k: usize, epsilon: f64, delta: f64) -> Result<Self, CoreError> {
        if k == 0 {
            return Err(CoreError::InvalidParams("k must be >= 1".into()));
        }
        if !(epsilon > 0.0 && epsilon < ONE_MINUS_INV_E) {
            return Err(CoreError::InvalidParams(format!(
                "epsilon must be in (0, 1 - 1/e ≈ 0.632), got {epsilon}"
            )));
        }
        if !(delta > 0.0 && delta < 1.0) {
            return Err(CoreError::InvalidParams(format!("delta must be in (0, 1), got {delta}")));
        }
        Ok(Params { k, epsilon, delta, rule: StoppingRule::default() })
    }

    /// The paper's default `δ = 1/n` for a graph with `n` nodes (§7.1).
    pub fn with_paper_delta(k: usize, epsilon: f64, n: u64) -> Result<Self, CoreError> {
        Self::new(k, epsilon, 1.0 / n.max(2) as f64)
    }

    /// Selects the stopping rule the run's [`crate::bounds::certificate::Certificate`]
    /// evaluates under.
    pub fn with_stopping_rule(mut self, rule: StoppingRule) -> Self {
        self.rule = rule;
        self
    }
}

/// SSA's precision split. Any `ε₁ ∈ (0,∞)`, `ε₂, ε₃ ∈ (0,1)` satisfying
/// Eq. 18,
///
/// ```text
/// (1 − 1/e) · (ε₁ + ε₂ + ε₁ε₂ + ε₃) / ((1+ε₁)(1+ε₂)) ≤ ε,
/// ```
///
/// preserves the approximation guarantee; the split trades pool size
/// against verification cost (§4.2 discusses the regimes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SsaEpsilons {
    /// Slack allowed between the pool estimate and the verified estimate
    /// (stopping condition C2).
    pub e1: f64,
    /// Relative error of the Estimate-Inf verification (condition C2).
    pub e2: f64,
    /// Relative error of the optimal-influence estimate through the pool
    /// (condition C1).
    pub e3: f64,
}

impl SsaEpsilons {
    /// The paper's recommended defaults (Eqs. 19–20):
    ///
    /// ```text
    /// ε₂ = ε₃ = ε / (2(1 − 1/e))
    /// ε₁ = (1 + ε/(2(1 − 1/e − ε))) / (1 + ε₂) − 1
    /// ```
    ///
    /// For ε = 0.1 these give ε₁ = 1/78, ε₂ = ε₃ = 2/25 — the worked
    /// example printed in the paper (Eq. 21).
    pub fn recommended(epsilon: f64) -> Self {
        let e2 = epsilon / (2.0 * ONE_MINUS_INV_E);
        let e3 = e2;
        let e1 = (1.0 + epsilon / (2.0 * (ONE_MINUS_INV_E - epsilon))) / (1.0 + e2) - 1.0;
        SsaEpsilons { e1, e2, e3 }
    }

    /// Left-hand side of the Eq. 18 constraint — the overall ε this split
    /// realizes.
    pub fn effective_epsilon(&self) -> f64 {
        ONE_MINUS_INV_E * (self.e1 + self.e2 + self.e1 * self.e2 + self.e3)
            / ((1.0 + self.e1) * (1.0 + self.e2))
    }

    /// Checks domain and the Eq. 18 constraint against the target ε.
    pub fn validate(&self, epsilon: f64) -> Result<(), CoreError> {
        if !(self.e1 > 0.0 && self.e1.is_finite()) {
            return Err(CoreError::InvalidParams(format!(
                "epsilon_1 must be in (0, inf), got {}",
                self.e1
            )));
        }
        for (name, v) in [("epsilon_2", self.e2), ("epsilon_3", self.e3)] {
            if !(v > 0.0 && v < 1.0) {
                return Err(CoreError::InvalidParams(format!("{name} must be in (0, 1), got {v}")));
            }
        }
        let eff = self.effective_epsilon();
        if eff > epsilon * (1.0 + 1e-9) {
            return Err(CoreError::InvalidParams(format!(
                "epsilon split realizes {eff:.6} > target epsilon {epsilon:.6} (Eq. 18 violated)"
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_validation() {
        assert!(Params::new(0, 0.1, 0.1).is_err());
        assert!(Params::new(1, 0.0, 0.1).is_err());
        assert!(Params::new(1, 0.7, 0.1).is_err()); // beyond 1 - 1/e
        assert!(Params::new(1, 0.1, 0.0).is_err());
        assert!(Params::new(1, 0.1, 1.0).is_err());
        assert!(Params::new(10, 0.1, 0.01).is_ok());
        let p = Params::with_paper_delta(5, 0.1, 1000).unwrap();
        assert!((p.delta - 0.001).abs() < 1e-12);
    }

    #[test]
    fn recommended_matches_paper_worked_example() {
        // ε = 0.1 → ε₁ = 1/78, ε₂ = ε₃ = 2/25 (Eq. 21)
        let e = SsaEpsilons::recommended(0.1);
        assert!((e.e2 - 0.0791).abs() < 1e-3, "e2 = {}", e.e2);
        assert!((e.e3 - e.e2).abs() < 1e-12);
        assert!((e.e1 - 1.0 / 78.0).abs() < 2e-3, "e1 = {}", e.e1);
    }

    #[test]
    fn recommended_satisfies_eq18_across_range() {
        for eps in [0.01, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5] {
            let e = SsaEpsilons::recommended(eps);
            e.validate(eps).unwrap_or_else(|err| panic!("eps = {eps}: {err}"));
            // and the split should be nearly tight (not wasting precision)
            assert!(
                e.effective_epsilon() > 0.9 * eps,
                "eps = {eps}: effective {} too loose",
                e.effective_epsilon()
            );
        }
    }

    #[test]
    fn validate_rejects_bad_splits() {
        let bad = SsaEpsilons { e1: -0.1, e2: 0.1, e3: 0.1 };
        assert!(bad.validate(0.1).is_err());
        let bad = SsaEpsilons { e1: 0.1, e2: 1.5, e3: 0.1 };
        assert!(bad.validate(0.1).is_err());
        // violates Eq. 18: everything large
        let bad = SsaEpsilons { e1: 0.5, e2: 0.5, e3: 0.5 };
        assert!(bad.validate(0.1).is_err());
    }
}
