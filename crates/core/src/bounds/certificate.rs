//! The stopping-rule certification engine: one audited code path for
//! every "can we stop yet?" decision SSA and D-SSA make.
//!
//! Before this module, the D1/D2 checks of Algorithm 4 lived in
//! `dssa.rs` and the S1/S2 checks of Algorithm 1 in `ssa.rs` as two
//! hand-rolled copies of the same statistical argument. A [`Certificate`]
//! now owns the coverage threshold `Λ₁`, the precision composition of
//! Eq. 18, and — the reason this module exists — the **rule selection**
//! that settles the D2 anchor dispute (`docs/DERIVATIONS.md` §4):
//!
//! * [`StoppingRule::Conservative`] — the PR-3 closed forms with the
//!   find-half size `Λ·2^(t−1)` in the ε₂/ε₃ denominators. This is the
//!   default and reproduces the repository's pinned sample counts
//!   bit-exactly. At the D1 anchor it *claims* ε₂ ≈ ε/√Λ — the smallest
//!   (most conservative) ε₂-value of the two readings, which composes to
//!   the smallest `ε_t` and therefore the **earliest stop**.
//! * [`StoppingRule::DssaFix`] — ε₂ solved numerically from the
//!   stopping-rule count `Cov_{R^c} ≥ (1+ε₂)·Υ(ε₂, δ′)` (Dagum et al.,
//!   as re-anchored by the D-SSA-Fix erratum after Huang et al.'s
//!   PVLDB'17 critique), with the analogous ε₃ anchor
//!   `ε₃ = ε₂·√((1−1/e−ε)/(1+ε₂/3))`. At the D1 anchor this certifies
//!   ε₂ ≈ ε: strictly more evidence is demanded before D2 may fire, so
//!   `DssaFix` never stops before `Conservative` on the same stream.
//!
//! The mechanical settlement (see [`certified_precision`] and the tests
//! below): coverage mass `c` certifies precision `Θ(√(ln(1/δ′)/c))`, so
//! the conservative claim ε/√Λ at `c = Λ₁` overshoots what the verify
//! half's evidence supports by √Λ — the conservative rule is the
//! *optimistic* reading, D-SSA-Fix the sound one. Both are kept: the
//! conservative rule for baseline continuity (its empirical quality is
//! untouched — the pinned fixtures select identical seeds), the
//! D-SSA-Fix rule for runs that must carry the certified
//! `(1 − 1/e − ε, 1 − δ)` guarantee at the corrected constants.
//!
//! ```
//! use sns_core::bounds::certificate::certified_precision;
//! use sns_core::bounds::upsilon;
//!
//! // The stopping-rule theorem in one line: coverage mass equal to the
//! // D1 threshold (1+ε)·Υ(ε, δ′) certifies precision ≈ ε, not ε/√Λ.
//! let (eps, delta) = (0.1, 0.01);
//! let cov = (1.0 + eps) * upsilon(eps, delta);
//! let certified = certified_precision(cov, delta);
//! assert!((certified - eps).abs() < 1e-9);
//! ```

use crate::bounds::{upsilon, ONE_MINUS_INV_E};
use crate::params::SsaEpsilons;

/// Which reading of the D2/S2 precision anchor a run certifies against.
///
/// See the module docs and `docs/DERIVATIONS.md` §4 for the settlement;
/// the short version: `Conservative` is the repository's historical
/// default (earliest stop, smallest pools, pinned baselines), `DssaFix`
/// is the erratum-corrected rule (strictly ≥ samples, certified
/// constants).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StoppingRule {
    /// The PR-3 closed forms: `ε₂ = ε·√(Γ(1+ε)/(Λ·2^(t−1)·Î^c))` and the
    /// gap-adjusted ε₃, i.e. the find-half size in the denominator.
    /// Default; reproduces the pinned sample counts bit-exactly.
    #[default]
    Conservative,
    /// The D-SSA-Fix reading: ε₂ is the smallest precision the verify
    /// coverage *certifies* under the stopping-rule theorem,
    /// `Cov_{R^c} ≥ (1+ε₂)·Υ(ε₂, δ′)`, solved numerically per
    /// checkpoint; ε₃ uses the analogous gap-adjusted anchor.
    DssaFix,
}

impl StoppingRule {
    /// Short stable label used by benches and reports
    /// (`"conservative"` / `"dssa-fix"`).
    pub fn label(self) -> &'static str {
        match self {
            StoppingRule::Conservative => "conservative",
            StoppingRule::DssaFix => "dssa-fix",
        }
    }
}

impl std::fmt::Display for StoppingRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Which check terminated (or was the last obstacle for) a run — the
/// "what was binding at stop" record the certification engine leaves in
/// [`crate::RunResult`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StopCondition {
    /// The coverage threshold (D-SSA's D1 / SSA's S1) fired at the
    /// stopping iteration itself: coverage was the last obstacle, the
    /// precision check passed immediately once enough verify evidence
    /// existed.
    Coverage,
    /// Coverage had already been met at an earlier checkpoint; the
    /// precision composition (D2) or validation agreement (S2) was what
    /// delayed the stop.
    Precision,
    /// The nominal cap `Nmax` (or the iteration budget) terminated the
    /// run before the statistical conditions fired.
    Cap,
    /// No stopping rule was consulted: the algorithm runs a fixed,
    /// precomputed sample schedule (IMM, TIM/TIM+, fixed-pool RIS) or a
    /// non-RIS procedure.
    Schedule,
}

/// One evaluated precision check (condition D2): the dynamic ε-split the
/// rule derived from the checkpoint's evidence and the verdict.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecisionCheck {
    /// `ε₁ = max(0, Î/Î^c − 1)` — the find/verify disagreement, clamped
    /// at 0: a verify half that *over*-estimates must not be allowed to
    /// deflate `ε_t` below what the Eq. 18 composition supports.
    pub e1: f64,
    /// ε₂ under the certificate's [`StoppingRule`].
    pub e2: f64,
    /// ε₃ under the certificate's [`StoppingRule`].
    pub e3: f64,
    /// The realized `ε_t = (ε₁+ε₂+ε₁ε₂)(1−1/e−ε) + (1−1/e)·ε₃`.
    pub eps_t: f64,
    /// The verify-half influence estimate `Î^c = Γ·Cov/|R^c|`.
    pub i_verify: f64,
    /// `ε_t ≤ ε` — condition D2 holds.
    pub satisfied: bool,
}

/// The per-run stopping certificate: target precision, per-checkpoint
/// failure budget, coverage threshold `Λ₁`, and the selected
/// [`StoppingRule`]. Constructed once per run ([`Certificate::dssa`] /
/// [`Certificate::ssa`]) and consulted at every checkpoint, so the two
/// algorithms share one audited code path for D1/S1 and D2/S2.
#[derive(Debug, Clone, Copy)]
pub struct Certificate {
    rule: StoppingRule,
    /// Target precision ε of the run.
    eps: f64,
    /// Per-checkpoint failure budget δ′ = δ/(3·tmax).
    delta_iter: f64,
    /// Universe mass Γ (`n` for IM, `Σ b(v)` for TVM).
    gamma: f64,
    /// Coverage threshold Λ₁ (D1/S1).
    lambda1: f64,
    /// `1 − 1/e − ε` (> 0 by parameter validation).
    approx_gap: f64,
    /// SSA's static split; `None` for D-SSA's dynamic derivation.
    split: Option<SsaEpsilons>,
}

impl Certificate {
    /// Certificate for a D-SSA run (Algorithm 4): `Λ₁ = 1 + (1+ε)·Υ(ε, δ′)`
    /// and a dynamic, per-checkpoint ε-split via [`Certificate::dssa_precision`].
    pub fn dssa(rule: StoppingRule, eps: f64, delta_iter: f64, gamma: f64) -> Self {
        Certificate {
            rule,
            eps,
            delta_iter,
            gamma,
            lambda1: 1.0 + (1.0 + eps) * upsilon(eps, delta_iter),
            approx_gap: ONE_MINUS_INV_E - eps,
            split: None,
        }
    }

    /// Certificate for an SSA run (Algorithm 1): the static split fixes
    /// `Λ₁ = (1+ε₁)(1+ε₂)·Υ(ε₃, δ′)` and the agreement check
    /// ([`Certificate::agreement`]). The [`StoppingRule`] is recorded but
    /// cannot change SSA's behavior — its split is chosen up front, so
    /// both readings coincide (property-tested in `tests/paper_claims.rs`).
    pub fn ssa(
        rule: StoppingRule,
        eps: f64,
        split: SsaEpsilons,
        delta_iter: f64,
        gamma: f64,
    ) -> Self {
        Certificate {
            rule,
            eps,
            delta_iter,
            gamma,
            lambda1: (1.0 + split.e1) * (1.0 + split.e2) * upsilon(split.e3, delta_iter),
            approx_gap: ONE_MINUS_INV_E - eps,
            split: Some(split),
        }
    }

    /// The rule this certificate evaluates under.
    pub fn rule(&self) -> StoppingRule {
        self.rule
    }

    /// The coverage threshold `Λ₁` of condition D1/S1.
    pub fn lambda1(&self) -> f64 {
        self.lambda1
    }

    /// Condition D1/S1: the (verify) coverage carries enough mass.
    pub fn coverage_met(&self, covered: u64) -> bool {
        covered as f64 >= self.lambda1
    }

    /// Condition D2: derives the dynamic `(ε₁, ε₂, ε₃)` from a D-SSA
    /// checkpoint — find-half estimate `i_find`, verify-half coverage
    /// `cov_verify` over `half` sets — and composes them per Eq. 18.
    ///
    /// `half` is both the find-half and verify-half size (`Λ·2^(t−1)`,
    /// possibly clamped by the `Nmax` cap on the final iteration).
    pub fn dssa_precision(&self, i_find: f64, cov_verify: u64, half: u64) -> PrecisionCheck {
        let i_c = self.gamma * cov_verify as f64 / half as f64;
        // Negative disagreement (verify over-estimates) must clamp to 0:
        // Eq. 18's composition assumes ε₁ ≥ 0, and a negative ε₁ would
        // deflate ε_t below what the evidence supports and fire D2 early.
        let e1 = (i_find / i_c - 1.0).max(0.0);
        let (e2, e3) = match self.rule {
            StoppingRule::Conservative => {
                // PR-3 closed forms, find-half size in the denominator.
                // Kept operation-for-operation identical to the pre-split
                // dssa.rs so the pinned counters stay bit-exact.
                let find_size = half as f64;
                let eps = self.eps;
                let e2 = eps * (self.gamma * (1.0 + eps) / (find_size * i_c)).sqrt();
                let e3 = eps
                    * (self.gamma * (1.0 + eps) * self.approx_gap
                        / ((1.0 + eps / 3.0) * find_size * i_c))
                        .sqrt();
                (e2, e3)
            }
            StoppingRule::DssaFix => {
                // ε₂: smallest precision the verify coverage certifies
                // under Cov ≥ (1+ε₂)·Υ(ε₂, δ′); ε₃: the analogous
                // gap-adjusted anchor (DERIVATIONS §4).
                let e2 = certified_precision(cov_verify as f64, self.delta_iter);
                let e3 = if e2.is_finite() {
                    e2 * (self.approx_gap / (1.0 + e2 / 3.0)).sqrt()
                } else {
                    f64::INFINITY
                };
                (e2, e3)
            }
        };
        let eps_t = (e1 + e2 + e1 * e2) * self.approx_gap + ONE_MINUS_INV_E * e3;
        PrecisionCheck { e1, e2, e3, eps_t, i_verify: i_c, satisfied: eps_t <= self.eps }
    }

    /// Condition S2: the pool estimate agrees with the independent
    /// validation within the static split's `(1 + ε₁)` slack.
    ///
    /// # Panics
    /// Panics if the certificate was built with [`Certificate::dssa`]
    /// (D-SSA has no static split; its agreement lives inside
    /// [`Certificate::dssa_precision`] as ε₁).
    pub fn agreement(&self, i_find: f64, i_verify: f64) -> bool {
        let split = self.split.expect("agreement() needs the SSA static split");
        i_find <= (1.0 + split.e1) * i_verify
    }
}

/// The smallest precision `ε` certified by `cov` units of coverage mass
/// at per-checkpoint confidence `1 − delta_iter`: the boundary of the
/// stopping-rule condition `cov ≥ (1+ε)·Υ(ε, δ′)` (Dagum–Karp–Luby–Ross,
/// as used by the D-SSA-Fix erratum), solved by bisection.
///
/// `(1+ε)·Υ(ε, δ′)` decreases monotonically from `∞` (ε → 0) to
/// `(2/3)·ln(1/δ′)` (ε → ∞), so the solution is unique when it exists;
/// coverage below that floor certifies nothing and yields
/// `f64::INFINITY` (the caller's D2 then cannot fire — correct, since
/// such a checkpoint carries no usable evidence).
pub fn certified_precision(cov: f64, delta_iter: f64) -> f64 {
    assert!(cov.is_finite(), "coverage must be finite, got {cov}");
    if cov <= 0.0 {
        return f64::INFINITY;
    }
    let demand = |e: f64| (1.0 + e) * upsilon(e, delta_iter);
    // Bracket the root: demand(lo) ≥ cov ≥ demand(hi).
    let mut lo = 1e-12_f64;
    while demand(lo) < cov {
        lo /= 4.0;
        if lo < 1e-300 {
            return lo; // cov astronomically large: certified ε ≈ 0
        }
    }
    let mut hi = 1.0_f64;
    while demand(hi) > cov {
        hi *= 2.0;
        if hi > 1e15 {
            return f64::INFINITY; // below the (2/3)·ln(1/δ′) floor
        }
    }
    // 200 halvings take |hi − lo| to f64 resolution; the loop is exact
    // and deterministic (no platform-dependent libm in the hot set).
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if demand(mid) > cov {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    // hi is on the certified side (demand(hi) ≤ cov).
    hi
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 0.1;
    const DELTA_ITER: f64 = 0.003;

    #[test]
    fn certified_precision_inverts_the_demand_curve() {
        for &(eps, delta) in &[(0.05, 0.01), (0.1, 0.003), (0.3, 0.03), (0.5, 0.1), (0.02, 1e-6)] {
            let cov = (1.0 + eps) * upsilon(eps, delta);
            let back = certified_precision(cov, delta);
            assert!((back - eps).abs() < 1e-9, "eps {eps}, delta {delta}: got {back}");
        }
        // more coverage certifies tighter precision
        let a = certified_precision(1_000.0, 0.01);
        let b = certified_precision(4_000.0, 0.01);
        assert!(b < a, "4x coverage must certify tighter: {a} vs {b}");
        // ~1/√cov scaling in the small-ε regime
        assert!((a / b - 2.0).abs() < 0.1, "expected ~2x tightening, got {}", a / b);
    }

    #[test]
    fn certified_precision_edge_cases() {
        // below the (2/3)·ln(1/δ′) floor nothing is certified
        assert_eq!(certified_precision(0.5, 0.01), f64::INFINITY);
        assert_eq!(certified_precision(0.0, 0.01), f64::INFINITY);
        // astronomically large coverage certifies ~0 without looping forever
        let tiny = certified_precision(1e300, 0.01);
        assert!(tiny < 1e-12);
    }

    #[test]
    fn dssa_certificate_thresholds_match_algorithm_4() {
        let cert = Certificate::dssa(StoppingRule::Conservative, EPS, DELTA_ITER, 400.0);
        let want = 1.0 + (1.0 + EPS) * upsilon(EPS, DELTA_ITER);
        assert_eq!(cert.lambda1(), want);
        assert!(!cert.coverage_met(want as u64 - 1));
        assert!(cert.coverage_met(want.ceil() as u64));
    }

    #[test]
    fn ssa_certificate_thresholds_match_algorithm_1() {
        let split = SsaEpsilons::recommended(EPS);
        let cert = Certificate::ssa(StoppingRule::Conservative, EPS, split, DELTA_ITER, 400.0);
        let want = (1.0 + split.e1) * (1.0 + split.e2) * upsilon(split.e3, DELTA_ITER);
        assert_eq!(cert.lambda1(), want);
        // S2: agreement within (1+ε₁)
        assert!(cert.agreement(100.0, 100.0));
        assert!(cert.agreement(100.0 * (1.0 + split.e1) - 1e-9, 100.0));
        assert!(!cert.agreement(100.0 * (1.0 + split.e1) + 1e-6, 100.0));
    }

    #[test]
    fn conservative_matches_pr3_closed_forms() {
        let gamma = 400.0;
        let cert = Certificate::dssa(StoppingRule::Conservative, EPS, DELTA_ITER, gamma);
        let (half, cov) = (2_398_u64, 1_589_u64);
        let check = cert.dssa_precision(260.0, cov, half);
        let i_c = gamma * cov as f64 / half as f64;
        let gap = ONE_MINUS_INV_E - EPS;
        let want_e2 = EPS * (gamma * (1.0 + EPS) / (half as f64 * i_c)).sqrt();
        let want_e3 =
            EPS * (gamma * (1.0 + EPS) * gap / ((1.0 + EPS / 3.0) * half as f64 * i_c)).sqrt();
        assert_eq!(check.e2, want_e2);
        assert_eq!(check.e3, want_e3);
        assert_eq!(check.i_verify, i_c);
        let e1 = (260.0 / i_c - 1.0_f64).max(0.0);
        assert_eq!(check.e1, e1);
        assert_eq!(check.eps_t, (e1 + want_e2 + e1 * want_e2) * gap + ONE_MINUS_INV_E * want_e3);
    }

    #[test]
    fn dssafix_certifies_eps_at_the_d1_anchor_conservative_claims_root_lambda_less() {
        // The §4 settlement in numbers: at Cov = Λ₁ the stopping-rule
        // count supports ε₂ ≈ ε, while the conservative closed form
        // claims ε₂ ≈ ε/√Λ — optimistic by √Λ.
        let gamma = 400.0;
        let lambda = upsilon(EPS, DELTA_ITER); // ≈ Λ
        let cons = Certificate::dssa(StoppingRule::Conservative, EPS, DELTA_ITER, gamma);
        let fix = Certificate::dssa(StoppingRule::DssaFix, EPS, DELTA_ITER, gamma);
        let cov = cons.lambda1().ceil() as u64; // the D1 anchor
        let half = 2 * lambda.ceil() as u64; // a t = 2 checkpoint
        let i_find = gamma * cov as f64 / half as f64; // ε₁ = 0
        let c = cons.dssa_precision(i_find, cov, half);
        let f = fix.dssa_precision(i_find, cov, half);
        assert!((f.e2 - EPS).abs() / EPS < 0.05, "DssaFix anchor: e2 = {}", f.e2);
        let claimed_ratio = f.e2 / c.e2;
        assert!(
            (claimed_ratio / lambda.sqrt() - 1.0).abs() < 0.25,
            "conservative optimism should be ~√Λ = {:.1}, got {claimed_ratio:.1}",
            lambda.sqrt()
        );
        // identical evidence: DssaFix must be the harder test to pass
        assert!(f.eps_t > c.eps_t);
    }

    #[test]
    fn dssafix_eps3_uses_the_gap_adjusted_anchor() {
        let cert = Certificate::dssa(StoppingRule::DssaFix, EPS, DELTA_ITER, 400.0);
        let check = cert.dssa_precision(100.0, 5_000, 10_000);
        let gap = ONE_MINUS_INV_E - EPS;
        let want_e3 = check.e2 * (gap / (1.0 + check.e2 / 3.0)).sqrt();
        assert!((check.e3 - want_e3).abs() < 1e-15);
        assert!(check.e3 < check.e2, "the gap shrinks ε₃ below ε₂ for ε < 1 − 1/e");
    }

    #[test]
    fn precision_clamps_negative_disagreement() {
        let cert = Certificate::dssa(StoppingRule::Conservative, EPS, DELTA_ITER, 400.0);
        // verify half over-estimates: Î < Î^c ⇒ raw ε₁ < 0 ⇒ clamp to 0
        let cov = 5_000_u64;
        let half = 10_000_u64;
        let i_c = 400.0 * cov as f64 / half as f64;
        let check = cert.dssa_precision(0.9 * i_c, cov, half);
        assert_eq!(check.e1, 0.0);
        // and the composition must not dip below the pure ε₂/ε₃ floor
        let gap = ONE_MINUS_INV_E - EPS;
        assert_eq!(check.eps_t, check.e2 * gap + ONE_MINUS_INV_E * check.e3);
    }

    #[test]
    fn no_usable_evidence_never_satisfies_d2() {
        // coverage below the certification floor: DssaFix must refuse
        let cert = Certificate::dssa(StoppingRule::DssaFix, EPS, DELTA_ITER, 400.0);
        let check = cert.dssa_precision(1.0, 1, 1_000_000);
        assert!(check.e2.is_infinite());
        assert!(!check.satisfied);
    }

    #[test]
    fn rule_labels_are_stable() {
        assert_eq!(StoppingRule::default(), StoppingRule::Conservative);
        assert_eq!(StoppingRule::Conservative.label(), "conservative");
        assert_eq!(StoppingRule::DssaFix.to_string(), "dssa-fix");
    }
}
