//! The unified RIS framework of §3: sample-complexity bounds shared by
//! every RIS algorithm.
//!
//! Central quantity (Table 1 of the paper):
//!
//! ```text
//! Υ(ε, δ) = (2 + 2ε/3) · ln(1/δ) / ε²
//! ```
//!
//! `Υ(ε,δ)/µ` Monte Carlo samples of a `[0,1]` variable with mean `µ`
//! suffice for an (ε,δ)-approximation (Corollary 1, via the martingale
//! Chernoff bounds of Lemma 2).
//!
//! The [`certificate`] submodule turns these bounds into the runtime
//! stopping-rule engine shared by SSA and D-SSA — including the
//! selectable D2 anchor ([`certificate::StoppingRule`]) that settles the
//! D-SSA-Fix dispute (`docs/DERIVATIONS.md` §4).

pub mod certificate;

/// `1 − 1/e`, the submodular greedy approximation factor.
pub const ONE_MINUS_INV_E: f64 = 1.0 - 0.36787944117144233; // 1 − e⁻¹

/// The sample bound `Υ(ε, δ) = (2 + 2ε/3)·ln(1/δ)/ε²`.
///
/// # Panics
/// Panics if `eps <= 0` or `delta` is not in `(0, 1)`.
pub fn upsilon(eps: f64, delta: f64) -> f64 {
    assert!(eps > 0.0, "upsilon needs eps > 0, got {eps}");
    assert!(
        (0.0..1.0).contains(&delta) && delta > 0.0,
        "upsilon needs delta in (0,1), got {delta}"
    );
    (2.0 + 2.0 * eps / 3.0) * (1.0 / delta).ln() / (eps * eps)
}

/// Natural log of the binomial coefficient `C(n, k)`.
///
/// Computed as `Σ_{i=1..k} ln((n−k+i)/i)` — exact to f64 rounding, `O(k)`
/// (`k ≤ 20000` in every experiment). `k > n` yields `-inf` (no such
/// subsets); `k = 0` yields `0`.
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    let k = k.min(n - k); // symmetry, fewer terms
    let mut sum = 0.0f64;
    for i in 1..=k {
        sum += ((n - k + i) as f64 / i as f64).ln();
    }
    sum
}

/// Natural log of the gamma function, Lanczos approximation (g = 7,
/// n = 9 coefficients; |rel err| < 1e-13 for x > 0).
///
/// Used to cross-check [`ln_choose`] and exposed for consumers that need
/// continuous binomial interpolation.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma needs x > 0, got {x}");
    const G: f64 = 7.0;
    // canonical Lanczos(g=7) coefficients, quoted verbatim from the
    // reference tables (a digit or two beyond f64 precision)
    #[allow(clippy::excessive_precision)]
    const COEF: [f64; 9] = [
        0.99999999999980993,
        676.5203681218851,
        -1259.1392167224028,
        771.32342877765313,
        -176.61502916214059,
        12.507343278686905,
        -0.13857109526572012,
        9.9843695780195716e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        // reflection formula
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// The nominal cap on SSA/D-SSA sample counts (line 2 of Algorithm 1,
/// line 1 of Algorithm 4):
///
/// ```text
/// Nmax = 8 · (1−1/e)/(2+2ε/3) · Υ(ε, (δ/6)/C(n,k)) · cap_ratio
///      = 8 · (1−1/e) · (ln(6/δ) + ln C(n,k)) / ε² · cap_ratio
/// ```
///
/// `cap_ratio` is the worst-case `Γ/OPT_k` bound: `n/k` for plain IM
/// (every seed influences at least itself, so `OPT_k ≥ k`), and
/// `Γ / (top-k weight sum)` for the weighted (TVM) universe.
pub fn nmax(n: u64, k: u64, eps: f64, delta: f64, cap_ratio: f64) -> f64 {
    assert!(cap_ratio.is_finite() && cap_ratio > 0.0, "cap_ratio must be positive");
    8.0 * ONE_MINUS_INV_E * ((6.0 / delta).ln() + ln_choose(n, k)) / (eps * eps) * cap_ratio
}

/// Iteration cap for the doubling schedule:
/// `imax = ⌈log₂(2·Nmax / Υ(ε, δ/3))⌉`, at least 1.
pub fn max_iterations(n_max: f64, eps: f64, delta: f64) -> u32 {
    let base = upsilon(eps, delta / 3.0);
    let ratio = (2.0 * n_max / base).max(2.0);
    (ratio.log2().ceil() as u32).max(1)
}

/// The RIS thresholds established by prior work, given an estimate of
/// `OPT_k` (all are `Θ(n/OPT_k)`; their intractable dependence on `OPT_k`
/// is exactly what SSA/D-SSA's stopping rules remove).
#[derive(Debug, Clone, Copy)]
pub struct PriorThresholds {
    /// TIM/TIM+'s threshold (Eq. 12, Tang et al. SIGMOD'14):
    /// `(8+2ε)·n·(ln(2/δ) + ln C(n,k)) / (ε²·OPT_k)`.
    pub tim: f64,
    /// IMM's threshold (Eq. 13, Tang et al. SIGMOD'15):
    /// `2n·((1−1/e)α + β)² / (ε²·OPT_k)`.
    pub imm: f64,
    /// The paper's simplification of IMM's threshold (Eq. 14):
    /// `4(1−1/e)·n·(2ln(2/δ) + ln C(n,k)) / (ε²·OPT_k)`.
    pub imm_simplified: f64,
}

/// Computes the prior-work thresholds for a given `OPT_k` estimate.
pub fn prior_thresholds(n: u64, k: u64, eps: f64, delta: f64, opt_k: f64) -> PriorThresholds {
    assert!(opt_k > 0.0, "opt_k must be positive");
    let nf = n as f64;
    let lc = ln_choose(n, k);
    let l2d = (2.0 / delta).ln();
    let tim = (8.0 + 2.0 * eps) * nf * (l2d + lc) / (eps * eps * opt_k);
    let alpha = l2d.sqrt();
    let beta = (ONE_MINUS_INV_E * (l2d + lc)).sqrt();
    let imm = 2.0 * nf * (ONE_MINUS_INV_E * alpha + beta).powi(2) / (eps * eps * opt_k);
    let imm_simplified = 4.0 * ONE_MINUS_INV_E * nf * (2.0 * l2d + lc) / (eps * eps * opt_k);
    PriorThresholds { tim, imm, imm_simplified }
}

/// Upper tail of the martingale Chernoff bound (Lemma 2, Eq. 5):
/// `Pr[µ̂ > (1+ε)µ] ≤ exp(−T·µ·ε² / (2 + 2ε/3))`.
pub fn chernoff_upper_tail(samples: f64, mu: f64, eps: f64) -> f64 {
    (-(samples * mu * eps * eps) / (2.0 + 2.0 * eps / 3.0)).exp()
}

/// Lower tail of the martingale Chernoff bound (Lemma 2, Eq. 6):
/// `Pr[µ̂ < (1−ε)µ] ≤ exp(−T·µ·ε² / 2)`.
pub fn chernoff_lower_tail(samples: f64, mu: f64, eps: f64) -> f64 {
    (-(samples * mu * eps * eps) / 2.0).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upsilon_closed_form() {
        // ε = 0.1, δ = 0.01: (2 + 0.0667)·ln(100)/0.01
        let u = upsilon(0.1, 0.01);
        let expected = (2.0 + 2.0 * 0.1 / 3.0) * 100.0f64.ln() / 0.01;
        assert!((u - expected).abs() < 1e-9);
        // tighter ε needs more samples; smaller δ needs more samples
        assert!(upsilon(0.05, 0.01) > u);
        assert!(upsilon(0.1, 0.001) > u);
    }

    #[test]
    #[should_panic(expected = "eps > 0")]
    fn upsilon_rejects_zero_eps() {
        upsilon(0.0, 0.1);
    }

    #[test]
    fn ln_choose_small_cases() {
        assert_eq!(ln_choose(5, 0), 0.0);
        assert_eq!(ln_choose(5, 5), 0.0);
        assert!((ln_choose(5, 2) - 10.0f64.ln()).abs() < 1e-12);
        assert!((ln_choose(10, 3) - 120.0f64.ln()).abs() < 1e-12);
        assert_eq!(ln_choose(3, 4), f64::NEG_INFINITY);
    }

    #[test]
    fn ln_choose_matches_ln_gamma() {
        for (n, k) in [(100u64, 10u64), (1000, 50), (50_000, 500), (1_000_000, 20_000)] {
            let direct = ln_choose(n, k);
            let via_gamma = ln_gamma(n as f64 + 1.0)
                - ln_gamma(k as f64 + 1.0)
                - ln_gamma((n - k) as f64 + 1.0);
            assert!(
                (direct - via_gamma).abs() / direct.abs().max(1.0) < 1e-9,
                "C({n},{k}): {direct} vs {via_gamma}"
            );
        }
    }

    #[test]
    fn ln_gamma_reference_values() {
        // Γ(1) = Γ(2) = 1; Γ(5) = 24; Γ(0.5) = √π
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!(ln_gamma(2.0).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-11);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-11);
    }

    #[test]
    fn nmax_matches_expanded_form() {
        let (n, k, eps, delta) = (10_000u64, 50u64, 0.1, 1e-4);
        let cap = n as f64 / k as f64;
        let got = nmax(n, k, eps, delta, cap);
        // Nmax = 8(1−1/e)/(2+2ε/3) · Υ(ε, δ/6/C(n,k)) · n/k
        let delta6 = (delta / 6.0).ln() - ln_choose(n, k); // ln of the tiny δ'
        let ups = (2.0 + 2.0 * eps / 3.0) * (-delta6) / (eps * eps);
        let expected = 8.0 * ONE_MINUS_INV_E / (2.0 + 2.0 * eps / 3.0) * ups * cap;
        assert!((got - expected).abs() / expected < 1e-12);
        assert!(got > 0.0);
    }

    #[test]
    fn max_iterations_reasonable() {
        let nm = nmax(10_000, 50, 0.1, 1e-4, 200.0);
        let imax = max_iterations(nm, 0.1, 1e-4);
        // doubling from Υ(ε, δ/3) must reach 2·Nmax within imax steps
        let base = upsilon(0.1, 1e-4 / 3.0);
        assert!(base * 2f64.powi(imax as i32) >= 2.0 * nm);
        assert!(imax < 64);
    }

    #[test]
    fn prior_thresholds_ordering() {
        // The paper's point: IMM's threshold improves on TIM's.
        let t = prior_thresholds(100_000, 100, 0.1, 1e-5, 5_000.0);
        assert!(t.imm < t.tim, "IMM {} should beat TIM {}", t.imm, t.tim);
        // Eq. 14 upper-bounds Eq. 13 (it was derived by relaxation).
        assert!(t.imm_simplified >= t.imm * 0.999);
    }

    #[test]
    fn chernoff_bounds_behave() {
        // more samples -> smaller failure probability
        assert!(chernoff_upper_tail(1000.0, 0.1, 0.1) < chernoff_upper_tail(100.0, 0.1, 0.1));
        assert!(chernoff_lower_tail(1000.0, 0.1, 0.1) < chernoff_lower_tail(100.0, 0.1, 0.1));
        // the Υ bound makes the upper tail at most δ
        let (eps, delta, mu) = (0.2, 0.05, 0.3);
        let t = upsilon(eps, delta) / mu;
        assert!(chernoff_upper_tail(t, mu, eps) <= delta * 1.0000001);
    }
}
