//! Run results and statistics.

use std::time::Duration;

use sns_graph::NodeId;

use crate::bounds::certificate::{StopCondition, StoppingRule};

/// Output of one SSA/D-SSA (or baseline) run, with the statistics the
/// paper's evaluation reports: running time (Figs. 4–5), RR-set counts
/// (Table 3) and pool memory (Figs. 6–7).
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Selected seed set (size k).
    pub seeds: Vec<NodeId>,
    /// The algorithm's own influence estimate `Î(Ŝ_k) = Γ·Cov_R(Ŝ_k)/|R|`.
    pub influence_estimate: f64,
    /// RR sets in the main (find) pool at termination.
    pub rr_sets_main: u64,
    /// RR sets consumed by verification (SSA's Estimate-Inf; zero for
    /// D-SSA, whose verify half lives inside the main stream).
    pub rr_sets_verify: u64,
    /// Stop-and-stare iterations executed.
    pub iterations: u32,
    /// Whether the nominal cap `Nmax` terminated the run instead of the
    /// statistical stopping conditions (rare by design).
    pub hit_cap: bool,
    /// The [`StoppingRule`] the run's certificate evaluated under; `None`
    /// for fixed-schedule algorithms (IMM, TIM/TIM+, fixed-pool RIS,
    /// CELF++), which consult no stopping rule.
    pub stopping_rule: Option<StoppingRule>,
    /// Which check was binding at termination: [`StopCondition::Coverage`]
    /// when D1/S1 fired at the stopping iteration itself,
    /// [`StopCondition::Precision`] when coverage had been met earlier
    /// and D2/S2 lagged, [`StopCondition::Cap`] when `Nmax` (or a
    /// timeout) cut the run short, [`StopCondition::Schedule`] for
    /// fixed-schedule algorithms.
    pub binding: StopCondition,
    /// Wall-clock time of the run.
    pub wall_time: Duration,
    /// Peak byte footprint of the RR pool(s) — the Figs. 6–7 quantity.
    pub peak_pool_bytes: u64,
    /// Total in-edges examined while sampling (machine-independent cost).
    pub total_edges_examined: u64,
}

impl RunResult {
    /// Total RR sets generated (main + verification).
    pub fn rr_sets_total(&self) -> u64 {
        self.rr_sets_main + self.rr_sets_verify
    }
}

impl std::fmt::Display for RunResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} seeds, Î = {:.1}, {} RR sets ({} verify), {} iterations{}{}, {:.3}s, {:.1} MB pool",
            self.seeds.len(),
            self.influence_estimate,
            self.rr_sets_total(),
            self.rr_sets_verify,
            self.iterations,
            if self.hit_cap { " (hit cap)" } else { "" },
            match self.stopping_rule {
                Some(StoppingRule::DssaFix) => " [dssa-fix]",
                _ => "",
            },
            self.wall_time.as_secs_f64(),
            self.peak_pool_bytes as f64 / (1024.0 * 1024.0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_display() {
        let r = RunResult {
            seeds: vec![1, 2],
            influence_estimate: 12.5,
            rr_sets_main: 100,
            rr_sets_verify: 20,
            iterations: 3,
            hit_cap: false,
            stopping_rule: Some(StoppingRule::Conservative),
            binding: StopCondition::Precision,
            wall_time: Duration::from_millis(1500),
            peak_pool_bytes: 2 * 1024 * 1024,
            total_edges_examined: 999,
        };
        assert_eq!(r.rr_sets_total(), 120);
        let s = r.to_string();
        assert!(s.contains("2 seeds"));
        assert!(s.contains("120 RR sets"));
        assert!(!s.contains("hit cap"));
        assert!(!s.contains("dssa-fix"), "conservative runs stay untagged: {s}");
        let tagged = RunResult { stopping_rule: Some(StoppingRule::DssaFix), ..r }.to_string();
        assert!(tagged.contains("[dssa-fix]"), "{tagged}");
    }
}
