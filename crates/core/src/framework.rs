//! The unified RIS framework's two-step algorithm (§3.2).
//!
//! Every RIS method reduces to: (1) generate *some* number of RR sets,
//! (2) run greedy Max-Coverage. What distinguishes TIM/TIM+/IMM/SSA/D-SSA
//! is only *how many* sets step (1) produces. [`ris_fixed_pool`] is the
//! two-step algorithm with an explicitly given pool size; the baselines
//! (`sns-baselines`) drive it with their respective thresholds, and tests
//! use it as the "ground RIS" oracle.

// Sanctioned wall-clock read: report-only elapsed-time stat (see lint-allow.toml).
#![allow(clippy::disallowed_methods)]

use std::time::Instant;

use sns_rrset::{max_coverage, RrCollection};

use crate::bounds::certificate::StopCondition;
use crate::{RunResult, SamplingContext};

pub use crate::bounds::PriorThresholds as RisThresholds;

/// Runs the two-step RIS algorithm with a fixed pool of `num_sets` RR
/// sets: generate, then greedy Max-Coverage for `k` seeds.
pub fn ris_fixed_pool(ctx: &SamplingContext<'_>, k: usize, num_sets: u64) -> RunResult {
    let start = Instant::now();
    let mut pool = RrCollection::new(ctx.graph().num_nodes());
    let sampler = ctx.sampler(0);
    if ctx.threads() > 1 {
        pool.extend_parallel(&sampler, 0, num_sets, ctx.threads());
    } else {
        let mut s = sampler;
        pool.extend_sequential(&mut s, 0, num_sets);
    }
    let cover = max_coverage(&pool, k);
    let i_hat = cover.influence_estimate(ctx.gamma(), num_sets);
    RunResult {
        seeds: cover.seeds,
        influence_estimate: i_hat,
        rr_sets_main: num_sets,
        rr_sets_verify: 0,
        iterations: 1,
        hit_cap: false,
        stopping_rule: None,
        binding: StopCondition::Schedule,
        wall_time: start.elapsed(),
        peak_pool_bytes: pool.memory_bytes(),
        total_edges_examined: pool.total_edges_examined(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_diffusion::Model;
    use sns_graph::{gen, WeightModel};

    #[test]
    fn fixed_pool_runs_and_reports() {
        let g = gen::erdos_renyi(100, 600, 4).build(WeightModel::WeightedCascade).unwrap();
        let ctx = SamplingContext::new(&g, Model::IndependentCascade).with_seed(8);
        let r = ris_fixed_pool(&ctx, 3, 500);
        assert_eq!(r.seeds.len(), 3);
        assert_eq!(r.rr_sets_main, 500);
        assert!(r.influence_estimate >= 0.0);
        assert!(r.peak_pool_bytes > 0);
    }

    #[test]
    fn larger_pools_stabilize_the_estimate() {
        let g = gen::erdos_renyi(200, 1200, 4).build(WeightModel::WeightedCascade).unwrap();
        let ctx = SamplingContext::new(&g, Model::LinearThreshold).with_seed(8);
        // two big pools from different streams should agree more closely
        // than two small pools
        let big_a = ris_fixed_pool(&ctx.clone().with_seed(1), 3, 20_000).influence_estimate;
        let big_b = ris_fixed_pool(&ctx.clone().with_seed(2), 3, 20_000).influence_estimate;
        let small_a = ris_fixed_pool(&ctx.clone().with_seed(1), 3, 50).influence_estimate;
        let small_b = ris_fixed_pool(&ctx.clone().with_seed(2), 3, 50).influence_estimate;
        let big_gap = (big_a - big_b).abs();
        let small_gap = (small_a - small_b).abs();
        assert!(
            big_gap <= small_gap + 1.0,
            "big pools disagree more ({big_gap}) than small ({small_gap})"
        );
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = gen::erdos_renyi(150, 900, 4).build(WeightModel::WeightedCascade).unwrap();
        let seq = ris_fixed_pool(
            &SamplingContext::new(&g, Model::IndependentCascade).with_seed(5).with_threads(1),
            4,
            2000,
        );
        let par = ris_fixed_pool(
            &SamplingContext::new(&g, Model::IndependentCascade).with_seed(5).with_threads(8),
            4,
            2000,
        );
        assert_eq!(seq.seeds, par.seeds);
        assert_eq!(seq.influence_estimate, par.influence_estimate);
    }
}
