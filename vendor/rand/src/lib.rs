//! Offline shim implementing the subset of the `rand` 0.8 API this
//! workspace uses.
//!
//! The build environment has no network access, so the real `rand` crate
//! cannot be fetched; this vendored stand-in provides source-compatible
//! `Rng`/`RngCore`/`SeedableRng` traits, `rngs::StdRng`,
//! `distributions::{Distribution, Uniform}` and `seq::SliceRandom`.
//! `StdRng` here is xoshiro256++ rather than ChaCha12 — every consumer in
//! the workspace treats `StdRng` as an opaque deterministic generator, so
//! only reproducibility (same seed → same stream), not the exact stream,
//! matters.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type for fallible RNG operations (never produced by the
/// generators in this shim; exists for signature compatibility).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator: raw word output.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator seedable from a fixed-size byte seed or a `u64`.
pub trait SeedableRng: Sized {
    /// The byte-seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a byte seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut s = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut s).to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&word[..len]);
        }
        Self::from_seed(seed)
    }
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Types that can be drawn from the "standard" distribution via
/// [`Rng::gen`]: floats uniform in `[0, 1)`, integers over their full
/// range, `bool` with probability 1/2.
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty => $next:ident),*) => {$(
        impl StandardSample for $t {
            #[inline]
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$next() as $t
            }
        }
    )*};
}

impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64, i8 => next_u32, i16 => next_u32,
    i32 => next_u32, i64 => next_u64, isize => next_u64);

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Integer uniform sampling over `[0, bound)` without modulo bias
/// (Lemire's rejection method on the widening multiply).
#[inline]
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(bound as u128);
        let lo = m as u64;
        if lo >= bound || lo >= (u64::MAX - bound + 1) % bound {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_u64_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // full u64 domain
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo + uniform_u64_below(rng, span) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as StandardSample>::standard_sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as StandardSample>::standard_sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

/// Convenience extension over [`RngCore`]: typed draws.
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution (see
    /// [`StandardSample`]).
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws uniformly from `range`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{splitmix64, RngCore, SeedableRng};

    /// The shim's standard deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            let mut chunks = dest.chunks_exact_mut(8);
            for chunk in &mut chunks {
                chunk.copy_from_slice(&self.next_u64().to_le_bytes());
            }
            let rem = chunks.into_remainder();
            if !rem.is_empty() {
                let bytes = self.next_u64().to_le_bytes();
                let len = rem.len();
                rem.copy_from_slice(&bytes[..len]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                *word = u64::from_le_bytes(seed[i * 8..(i + 1) * 8].try_into().unwrap());
            }
            if s == [0, 0, 0, 0] {
                let mut x = 0x9E3779B97F4A7C15u64;
                for word in s.iter_mut() {
                    *word = splitmix64(&mut x);
                }
            }
            StdRng { s }
        }
    }
}

pub use rngs::StdRng;

pub mod distributions {
    //! Distribution sampling (`Uniform` only).

    use super::{RngCore, SampleRange};
    use std::ops::Range;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one value from `rng`.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over a half-open or closed interval.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        lo: T,
        hi: T,
        inclusive: bool,
    }

    impl<T: Copy + PartialOrd> Uniform<T> {
        /// Uniform over `[lo, hi)`.
        pub fn new(lo: T, hi: T) -> Self {
            assert!(lo < hi, "Uniform::new called with empty range");
            Uniform { lo, hi, inclusive: false }
        }

        /// Uniform over `[lo, hi]`.
        pub fn new_inclusive(lo: T, hi: T) -> Self {
            assert!(lo <= hi, "Uniform::new_inclusive called with empty range");
            Uniform { lo, hi, inclusive: true }
        }
    }

    impl<T> Distribution<T> for Uniform<T>
    where
        T: Copy + PartialOrd,
        Range<T>: SampleRange<T>,
        std::ops::RangeInclusive<T>: SampleRange<T>,
    {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            if self.inclusive {
                (self.lo..=self.hi).sample_single(rng)
            } else {
                (self.lo..self.hi).sample_single(rng)
            }
        }
    }
}

pub mod seq {
    //! Sequence utilities (`shuffle` only).

    use super::{Rng, RngCore};

    /// Extension trait for slices: random shuffling.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn std_rng_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&y));
            let z = rng.gen_range(5usize..=5);
            assert_eq!(z, 5);
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sum = 0.0f64;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn uniform_distribution_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let die = Uniform::new(0usize, 3);
        let mut seen = [false; 3];
        for _ in 0..1000 {
            seen[die.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let f = Uniform::new_inclusive(0.2f32, 0.4);
        for _ in 0..1000 {
            let x = f.sample(&mut rng);
            assert!((0.2..=0.4).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }
}
