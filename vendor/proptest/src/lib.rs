//! Offline shim implementing the subset of the `proptest` API this
//! workspace uses.
//!
//! Supports the `proptest!` macro (with an optional
//! `#![proptest_config(...)]` inner attribute), range and tuple
//! strategies, `collection::vec`, `Strategy::prop_map`, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` assertion macros.
//!
//! Unlike real proptest there is **no shrinking**: a failing case panics
//! with the case number and the failure message. Case generation is
//! deterministic per (test body, case index), so failures reproduce.

#[doc(hidden)]
pub use rand as __rand;

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::{Rng, SampleRange};
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),*) => {
            impl<$($name: Strategy),*> Strategy for ($($name,)*) {
                type Value = ($($name::Value,)*);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)*) = self;
                    ($($name.generate(rng),)*)
                }
            }
        };
    }

    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);

    /// Uniform range strategy helper used by [`SampleRange`] bounds.
    pub fn sample<T, S: SampleRange<T>>(rng: &mut StdRng, range: S) -> T {
        rng.gen_range(range)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Length specification for [`vec()`]: an exact length or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange(Range<usize>);

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            SizeRange(len..len + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            SizeRange(range)
        }
    }

    /// Strategy for `Vec`s whose length is drawn from `size` and whose
    /// elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Creates a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into().0 }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.start + 1 >= self.size.end {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Minimal test-case driver.

    /// Why a generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs — not a failure.
        Reject,
        /// A `prop_assert!`-family assertion failed.
        Fail(String),
    }

    /// Result type the `proptest!`-generated closure returns.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runtime configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Deterministic per-test seed: FNV-1a over the test name, mixed with
    /// the case index by the caller.
    pub fn seed_for(name: &str, case: u64) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100000001b3);
        }
        h ^ case.wrapping_mul(0x9E3779B97F4A7C15)
    }
}

pub mod prelude {
    //! The usual glob import.

    pub use crate::collection::vec as prop_vec;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts a condition inside a `proptest!` body; on failure the current
/// case is reported with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        // `if !cond` on a float comparison would trip
        // clippy::neg_cmp_op_on_partial_ord at every call site, and an
        // allow-attribute would not parse in expression position — so
        // branch on the un-negated condition instead.
        if $cond {
        } else {
            return Err($crate::test_runner::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Discards the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        // same un-negated branching as prop_assert! (see there)
        if $cond {
        } else {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Declares property tests: each `fn name(bindings) { body }` item becomes
/// a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! {
            ($crate::test_runner::Config::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($args:tt)* ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut ran: u32 = 0;
            let mut attempts: u64 = 0;
            // allow extra attempts to compensate for prop_assume rejects
            let max_attempts = u64::from(config.cases) * 10 + 100;
            while ran < config.cases && attempts < max_attempts {
                let seed = $crate::test_runner::seed_for(
                    concat!(module_path!(), "::", stringify!($name)),
                    attempts,
                );
                attempts += 1;
                let mut proptest_rng =
                    <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                        seed,
                    );
                #[allow(clippy::redundant_closure_call)]
                let outcome: $crate::test_runner::TestCaseResult = (|| {
                    $crate::__proptest_bind!(proptest_rng, $($args)*);
                    $body
                    Ok(())
                })();
                match outcome {
                    Ok(()) => ran += 1,
                    Err($crate::test_runner::TestCaseError::Reject) => {}
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case {} (attempt {}) failed: {}",
                            ran, attempts - 1, msg
                        );
                    }
                }
            }
            assert!(
                ran > 0,
                "proptest generated no accepted cases in {} attempts",
                max_attempts
            );
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, mut $name:ident in $strat:expr, $($rest:tt)*) => {
        #[allow(unused_mut)]
        let mut $name = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
    ($rng:ident, mut $name:ident in $strat:expr) => {
        #[allow(unused_mut)]
        let mut $name = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident, $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
    ($rng:ident, $name:ident in $strat:expr) => {
        let $name = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_generate_in_bounds(x in 3u32..10, y in 0.0f64..=1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.0..=1.0).contains(&y));
        }

        #[test]
        fn vec_strategy_respects_size(v in crate::collection::vec(0u32..5, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7, "len = {}", v.len());
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn map_and_tuples_compose(
            p in ((0u32..4, 0u32..4), 0.5f32..=1.0).prop_map(|((a, b), w)| (a, b, w)),
        ) {
            prop_assert!(p.0 < 4 && p.1 < 4);
            prop_assert!(p.2 >= 0.5);
        }

        #[test]
        fn assume_discards(n in 0u64..100, mut acc in 0u64..1) {
            prop_assume!(n % 2 == 0);
            acc += n;
            prop_assert_eq!(acc % 2, n % 2);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        #[test]
        fn config_limits_cases(_x in 0u32..10) {
            // nothing to assert — presence exercises the config path
        }
    }
}
