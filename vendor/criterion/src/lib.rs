//! Offline shim implementing the subset of the `criterion` API this
//! workspace's benches use.
//!
//! Measurement is deliberately simple: per benchmark, one warm-up
//! invocation, then timed invocations until either `sample_size`
//! iterations or the group's `measurement_time` budget is exhausted.
//! Results (mean/min/max wall time per iteration) print to stdout in a
//! stable `bench-name/id: ...` format that downstream tooling can grep.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    /// Mean/min/max nanoseconds per iteration, filled by [`Bencher::iter`].
    result: Option<(f64, f64, f64)>,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, storing per-iteration statistics.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up (also primes caches/allocations).
        black_box(routine());
        let budget = self.measurement_time;
        let started = Instant::now();
        let mut times: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size.max(1) {
            let t0 = Instant::now();
            black_box(routine());
            times.push(t0.elapsed().as_nanos() as f64);
            if started.elapsed() > budget {
                break;
            }
        }
        let n = times.len() as f64;
        let mean = times.iter().sum::<f64>() / n;
        let min = times.iter().copied().fold(f64::INFINITY, f64::min);
        let max = times.iter().copied().fold(0.0, f64::max);
        self.result = Some((mean, min, max));
        self.iters = times.len() as u64;
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// A named collection of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = time;
        self
    }

    /// Sets the warm-up budget (accepted for compatibility; the shim
    /// always does exactly one warm-up invocation).
    pub fn warm_up_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Sets the target number of timed iterations.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Declares throughput (accepted for compatibility, not reported).
    pub fn throughput(&mut self, _elements: u64) -> &mut Self {
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            result: None,
            iters: 0,
        };
        f(&mut b, input);
        self.report(&id, &b);
        self
    }

    /// Runs one benchmark without an input value.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            result: None,
            iters: 0,
        };
        f(&mut b);
        self.report(&id, &b);
        self
    }

    fn report(&mut self, id: &BenchmarkId, b: &Bencher) {
        let full = format!("{}/{}", self.name, id.id);
        match b.result {
            Some((mean, min, max)) => {
                println!(
                    "{full:<60} time: [{} {} {}]  ({} iters)",
                    format_ns(min),
                    format_ns(mean),
                    format_ns(max),
                    b.iters
                );
                self.criterion.results.push(BenchResult {
                    name: full,
                    mean_ns: mean,
                    min_ns: min,
                    max_ns: max,
                    iters: b.iters,
                });
            }
            None => println!("{full:<60} (no measurement: Bencher::iter never called)"),
        }
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// One completed measurement, retained on the [`Criterion`] instance so
/// callers can post-process (e.g. serialize machine-readable output).
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// `group/benchmark` path.
    pub name: String,
    /// Mean wall time per iteration.
    pub mean_ns: f64,
    /// Fastest iteration.
    pub min_ns: f64,
    /// Slowest iteration.
    pub max_ns: f64,
    /// Number of timed iterations.
    pub iters: u64,
}

/// Benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    /// All measurements recorded so far.
    pub results: Vec<BenchResult>,
}

impl Criterion {
    /// Starts a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== group: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
        }
    }

    /// Runs one stand-alone benchmark (default settings).
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// Bundles benchmark functions into a group runner, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generates `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test`/`cargo bench` pass harness flags; a bare
            // `--test` run should not grind through full measurements.
            let quick = std::env::args().any(|a| a == "--test");
            if quick {
                println!("criterion shim: --test run, skipping measurements");
                return;
            }
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3).measurement_time(Duration::from_millis(50));
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function(BenchmarkId::from_parameter("noop"), |b| b.iter(|| 1 + 1));
        group.finish();
    }

    #[test]
    fn records_results() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
        assert_eq!(c.results.len(), 2);
        assert!(c.results[0].name.contains("shim/sum/100"));
        assert!(c.results.iter().all(|r| r.iters >= 1 && r.mean_ns >= 0.0));
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_compiles_and_runs() {
        let mut c = Criterion::default();
        benches(&mut c);
        assert!(!c.results.is_empty());
    }
}
