//! Offline shim implementing the subset of the `criterion` API this
//! workspace's benches use.
//!
//! Measurement is deliberately simple: per benchmark, one warm-up
//! invocation, then timed invocations until either `sample_size`
//! iterations or the group's `measurement_time` budget is exhausted.
//! Results (mean/min/max wall time per iteration) print to stdout in a
//! stable `bench-name/id: ...` format that downstream tooling can grep.
//!
//! Like real criterion, passing `--test` (what `cargo bench -- --test`
//! forwards, and what the CI bench-smoke job relies on) switches to
//! **test mode**: every benchmark routine — including its setup code —
//! executes exactly once, unmeasured, so panicking setup or bit-rotted
//! bench code fails the run instead of being skipped.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    test_mode: bool,
    /// Mean/min/max nanoseconds per iteration, filled by [`Bencher::iter`].
    result: Option<(f64, f64, f64)>,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, storing per-iteration statistics. In test mode
    /// the routine runs exactly once and nothing is recorded.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            self.iters = 1;
            return;
        }
        // Warm-up (also primes caches/allocations).
        black_box(routine());
        let budget = self.measurement_time;
        let started = Instant::now();
        let mut times: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size.max(1) {
            let t0 = Instant::now();
            black_box(routine());
            times.push(t0.elapsed().as_nanos() as f64);
            if started.elapsed() > budget {
                break;
            }
        }
        let n = times.len() as f64;
        let mean = times.iter().sum::<f64>() / n;
        let min = times.iter().copied().fold(f64::INFINITY, f64::min);
        let max = times.iter().copied().fold(0.0, f64::max);
        self.result = Some((mean, min, max));
        self.iters = times.len() as u64;
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// A named collection of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = time;
        self
    }

    /// Sets the warm-up budget (accepted for compatibility; the shim
    /// always does exactly one warm-up invocation).
    pub fn warm_up_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Sets the target number of timed iterations.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Declares throughput (accepted for compatibility, not reported).
    pub fn throughput(&mut self, _elements: u64) -> &mut Self {
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            test_mode: self.criterion.test_mode,
            result: None,
            iters: 0,
        };
        f(&mut b, input);
        self.report(&id, &b);
        self
    }

    /// Runs one benchmark without an input value.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            test_mode: self.criterion.test_mode,
            result: None,
            iters: 0,
        };
        f(&mut b);
        self.report(&id, &b);
        self
    }

    fn report(&mut self, id: &BenchmarkId, b: &Bencher) {
        let full = format!("{}/{}", self.name, id.id);
        if self.criterion.test_mode {
            // A routine that never reaches Bencher::iter is exactly the
            // bit-rot the smoke run exists to catch — fail loudly.
            assert!(b.iters > 0, "Testing {full}: Bencher::iter never called");
            println!("Testing {full}: ok (1 unmeasured iteration)");
            return;
        }
        match b.result {
            Some((mean, min, max)) => {
                println!(
                    "{full:<60} time: [{} {} {}]  ({} iters)",
                    format_ns(min),
                    format_ns(mean),
                    format_ns(max),
                    b.iters
                );
                self.criterion.results.push(BenchResult {
                    name: full,
                    mean_ns: mean,
                    min_ns: min,
                    max_ns: max,
                    iters: b.iters,
                });
            }
            None => println!("{full:<60} (no measurement: Bencher::iter never called)"),
        }
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// One completed measurement, retained on the [`Criterion`] instance so
/// callers can post-process (e.g. serialize machine-readable output).
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// `group/benchmark` path.
    pub name: String,
    /// Mean wall time per iteration.
    pub mean_ns: f64,
    /// Fastest iteration.
    pub min_ns: f64,
    /// Slowest iteration.
    pub max_ns: f64,
    /// Number of timed iterations.
    pub iters: u64,
}

/// Benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    /// All measurements recorded so far.
    pub results: Vec<BenchResult>,
    test_mode: bool,
}

impl Criterion {
    /// Enables test mode (see the module docs): every benchmark routine
    /// runs exactly once, unmeasured, and `results` stays empty.
    pub fn test_mode(mut self, on: bool) -> Self {
        self.test_mode = on;
        self
    }

    /// Whether this instance is in test mode.
    pub fn is_test_mode(&self) -> bool {
        self.test_mode
    }
    /// Starts a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== group: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
        }
    }

    /// Runs one stand-alone benchmark (default settings).
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// Bundles benchmark functions into a group runner, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generates `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench -- --test` (the CI bench-smoke job) runs every
            // routine once, unmeasured, so panicking setup still fails.
            let quick = std::env::args().any(|a| a == "--test");
            if quick {
                println!("criterion shim: --test run, one unmeasured iteration per bench");
            }
            let mut c = $crate::Criterion::default().test_mode(quick);
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3).measurement_time(Duration::from_millis(50));
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function(BenchmarkId::from_parameter("noop"), |b| b.iter(|| 1 + 1));
        group.finish();
    }

    #[test]
    fn records_results() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
        assert_eq!(c.results.len(), 2);
        assert!(c.results[0].name.contains("shim/sum/100"));
        assert!(c.results.iter().all(|r| r.iters >= 1 && r.mean_ns >= 0.0));
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_compiles_and_runs() {
        let mut c = Criterion::default();
        benches(&mut c);
        assert!(!c.results.is_empty());
    }

    #[test]
    fn test_mode_runs_each_routine_once_without_recording() {
        let mut c = Criterion::default().test_mode(true);
        assert!(c.is_test_mode());
        let mut calls = 0u32;
        {
            let mut group = c.benchmark_group("smoke");
            group.sample_size(50).measurement_time(Duration::from_secs(30));
            group.bench_function("counted", |b| b.iter(|| calls += 1));
            group.finish();
        }
        assert_eq!(calls, 1, "test mode must execute the routine exactly once");
        assert!(c.results.is_empty(), "test mode records no measurements");
    }

    #[test]
    #[should_panic(expected = "Bencher::iter never called")]
    fn test_mode_fails_when_iter_is_never_called() {
        let mut c = Criterion::default().test_mode(true);
        let mut group = c.benchmark_group("smoke");
        group.bench_function("bit-rotted", |_b| {});
    }
}
