//! Viral marketing campaign planning: compare a seeding budget sweep
//! across algorithms — the scenario from the paper's introduction.
//!
//! A brand wants to seed a campaign with k ambassadors. This example
//! sweeps budgets on a Twitter-like network, compares D-SSA against the
//! prior state of the art (IMM), and reports the marginal value of each
//! additional budget tranche so a marketer can pick the knee point.
//!
//! ```sh
//! cargo run --release --example viral_marketing
//! ```

use stop_and_stare::baselines::Imm;
use stop_and_stare::graph::{gen::datasets, GraphStats};
use stop_and_stare::{Dssa, Model, Params, SamplingContext, SpreadEstimator};

fn main() {
    // Twitter stand-in at 1/1024 scale (≈ 40k users) so the example runs
    // in seconds on a laptop; see `repro` for full-scale experiments.
    let graph =
        datasets::TWITTER.generate(1.0 / 1024.0, 2024).expect("generator parameters are valid");
    println!("campaign network: {}\n", GraphStats::compute(&graph));

    let ctx = SamplingContext::new(&graph, Model::LinearThreshold).with_seed(11);
    let estimator = SpreadEstimator::new(&graph, Model::LinearThreshold);

    println!(
        "{:>8}  {:>14}  {:>12}  {:>14}  {:>12}  {:>16}",
        "budget", "D-SSA reach", "D-SSA time", "IMM reach", "IMM time", "marginal reach/k"
    );
    let mut prev_reach = 0.0f64;
    let mut prev_k = 0usize;
    for k in [5usize, 10, 25, 50, 100, 250] {
        let params = Params::with_paper_delta(k, 0.1, graph.num_nodes() as u64)
            .expect("parameters are in range");
        let dssa = Dssa::new(params).run(&ctx).expect("run succeeds");
        let imm = Imm::new(params).run(&ctx).expect("run succeeds");
        let reach = estimator.estimate(&dssa.seeds, 5_000, 3);
        let imm_reach = estimator.estimate(&imm.seeds, 5_000, 3);
        let marginal = (reach - prev_reach) / (k - prev_k) as f64;
        println!(
            "{:>8}  {:>14.0}  {:>10.0}ms  {:>14.0}  {:>10.0}ms  {:>16.2}",
            k,
            reach,
            dssa.wall_time.as_secs_f64() * 1e3,
            imm_reach,
            imm.wall_time.as_secs_f64() * 1e3,
            marginal,
        );
        prev_reach = reach;
        prev_k = k;
    }
    println!(
        "\nreading the table: equal reach at every budget (same guarantee), but D-SSA \
         needs far fewer samples — the paper's headline result. Diminishing marginal \
         reach locates the budget knee."
    );
}
