//! The serving *front end*: a bounded admission queue with priorities
//! and deadlines in front of the batch planner — bursty, skewed query
//! traffic against one frozen RR pool.
//!
//! ```sh
//! cargo run --release --example serving_frontend
//! ```
//!
//! Where `seed_service.rs` shows the engine answering one curated
//! batch, this example shows what stands between raw traffic and the
//! engine in production: every query is offered to an
//! [`AdmissionQueue`] with a priority and an optional deadline on the
//! queue's virtual cost clock; overflow and hopeless deadlines are
//! rejected *at the door* with a typed reason; whatever is admitted is
//! drained in priority order and executed through
//! [`SeedQueryEngine::answer_planned`], which groups the batch by
//! (range, topic) so one gain-snapshot resolution serves each group —
//! bit-identical to the unplanned path, cheaper on cold caches.

use stop_and_stare::graph::{gen, WeightModel};
use stop_and_stare::tvm::TargetWeights;
use stop_and_stare::{
    AdmissionQueue, Model, Priority, SamplingContext, SeedQuery, SeedQueryEngine,
};

fn main() {
    let graph = gen::barabasi_albert(10_000, 5, gen::Orientation::RandomSingle, 42)
        .build(WeightModel::WeightedCascade)
        .expect("generator parameters are valid");
    let ctx = SamplingContext::new(&graph, Model::IndependentCascade).with_seed(7).with_threads(4);
    let engine = SeedQueryEngine::sample(&ctx, 20_000).with_threads(4);
    let pool_len = engine.pool().len() as u32;
    println!("engine frozen: {pool_len} sets\n");

    // A burst of mixed traffic: interactive dashboards (High, tight
    // deadlines), the default campaign queries (Normal), and analytics
    // sweeps (Low, patient). Two campaigns share the sports topic — the
    // planner will give them one weighted snapshot resolution.
    let sports = TargetWeights::synthetic_topic(&graph, 0.05, 1.0, 3).expect("valid topic");
    let mut queue = AdmissionQueue::new(8);
    let now = 0u64;
    let offers: Vec<(&str, SeedQuery, Priority, Option<u64>)> = vec![
        ("dashboard top-10", SeedQuery::top_k(10), Priority::High, Some(now + 200)),
        ("campaign top-25", SeedQuery::top_k(25), Priority::Normal, None),
        ("campaign sports-25", sports.seed_query(25), Priority::Normal, None),
        ("campaign sports-10", sports.seed_query(10), Priority::Normal, None),
        ("audit half-pool", SeedQuery::top_k(25).over_range(0..pool_len / 2), Priority::Low, None),
        // a deadline the backlog ahead of it already makes impossible
        ("impatient top-50", SeedQuery::top_k(50), Priority::Normal, Some(now + 10)),
        ("campaign top-5", SeedQuery::top_k(5), Priority::Normal, None),
        ("analytics full", SeedQuery::top_k(40), Priority::Low, None),
        ("campaign top-12", SeedQuery::top_k(12), Priority::Normal, None),
        ("overflow top-3", SeedQuery::top_k(3), Priority::Normal, None),
        ("overflow top-4", SeedQuery::top_k(4), Priority::Normal, None),
    ];
    println!("{:<20} {:<8} admission", "query", "class");
    for (label, query, priority, deadline) in offers {
        let class = format!("{priority:?}");
        match queue.admit(query, priority, deadline, now, pool_len) {
            Ok(ticket) => println!("{label:<20} {class:<8} admitted (ticket {ticket})"),
            Err(reason) => println!("{label:<20} {class:<8} REJECTED: {reason}"),
        }
    }

    // Drain in service order (priority desc, FIFO within) and execute
    // through the planner: grouped queries share snapshot resolutions.
    let drained = queue.drain(now, 16);
    let batch: Vec<SeedQuery> = drained.iter().map(|p| p.query.clone()).collect();
    let answers = engine.answer_planned(&batch).expect("admitted queries are valid");
    println!("\nserved {} queries in priority order:", answers.len());
    for (pending, answer) in drained.iter().zip(&answers) {
        println!(
            "  ticket {:<2} {:<8} k={:<3} covered {:>9.1}",
            pending.ticket,
            format!("{:?}", pending.priority),
            pending.query.k,
            answer.covered
        );
    }

    // The planner only changes who pays for snapshot resolution — never
    // the answers.
    assert_eq!(
        answers,
        engine.answer_batch(&batch).expect("valid batch"),
        "planned answers must be bit-identical to answer_batch"
    );
    let qstats = queue.stats();
    let estats = engine.stats();
    println!(
        "\nadmission: {} admitted, {} rejected (queue full), {} rejected (deadline)",
        qstats.admitted, qstats.rejected_queue_full, qstats.rejected_deadline
    );
    println!(
        "planner: {} groups over {} queries, {} snapshot resolutions saved",
        estats.planner_groups,
        batch.len(),
        estats.planner_builds_saved
    );
    println!("verified: planned answers are bit-identical to the per-query path");
}
