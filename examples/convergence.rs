//! D-SSA convergence trajectory: watch the dynamic ε-split tighten until
//! the stopping condition fires — §6 of the paper, made visible.
//!
//! Each doubling checkpoint prints the find/verify influence estimates,
//! the data-derived (ε₁, ε₂, ε₃), and the realized ε_t that condition D2
//! compares against the target ε. The run stops at the first checkpoint
//! where ε_t ≤ ε — *that* is the "stare" of stop-and-stare.
//!
//! ```sh
//! cargo run --release --example convergence
//! ```

use stop_and_stare::graph::{gen, GraphStats, WeightModel};
use stop_and_stare::{Dssa, Model, Params, SamplingContext};

fn main() {
    let graph = gen::rmat(20_000, 160_000, gen::RmatParams::GRAPH500, 13)
        .build(WeightModel::WeightedCascade)
        .expect("generator parameters are valid");
    println!("network: {}\n", GraphStats::compute(&graph));

    let epsilon = 0.1;
    let params = Params::with_paper_delta(100, epsilon, graph.num_nodes() as u64)
        .expect("parameters are in range");
    let ctx = SamplingContext::new(&graph, Model::LinearThreshold).with_seed(21);

    let (result, trace) = Dssa::new(params).run_traced(&ctx).expect("run succeeds");

    println!(
        "{:>3} {:>12} {:>10} {:>10} {:>9} {:>9} {:>9} {:>9}  D2?",
        "t", "pool", "Î(find)", "Î(verify)", "eps1", "eps2", "eps3", "eps_t"
    );
    for it in &trace {
        match (it.influence_verify, it.epsilons, it.eps_t) {
            (Some(ic), Some((e1, e2, e3)), Some(et)) => println!(
                "{:>3} {:>12} {:>10.0} {:>10.0} {:>9.4} {:>9.4} {:>9.4} {:>9.4}  {}",
                it.t,
                it.pool_size,
                it.influence_find,
                ic,
                e1,
                e2,
                e3,
                et,
                if et <= epsilon { "STOP" } else { "continue" }
            ),
            _ => println!(
                "{:>3} {:>12} {:>10.0} {:>10} {:>9} {:>9} {:>9} {:>9}  D1 not met",
                it.t, it.pool_size, it.influence_find, "-", "-", "-", "-", "-"
            ),
        }
    }

    println!(
        "\nstopped after {} iterations with {} RR sets; Î = {:.0}, ε target {epsilon}",
        result.iterations,
        result.rr_sets_total(),
        result.influence_estimate
    );
    println!(
        "note how ε₂/ε₃ shrink as the pool doubles while ε₁ hovers near 0 — the algorithm \
         spends samples exactly until the combined ε_t crosses the target, never further."
    );
}
