//! D-SSA convergence trajectory: watch the dynamic ε-split tighten until
//! the stopping condition fires — §6 of the paper, made visible — under
//! *both* readings of the D2 anchor (`docs/DERIVATIONS.md` §4).
//!
//! Each doubling checkpoint prints the find/verify influence estimates,
//! the data-derived (ε₁, ε₂, ε₃), and the realized ε_t that condition D2
//! compares against the target ε. The run stops at the first checkpoint
//! where ε_t ≤ ε — *that* is the "stare" of stop-and-stare. The same
//! stream is then replayed under the `DssaFix` rule, whose numerically
//! certified ε₂ is larger at equal evidence (by up to √Λ at the D1
//! anchor), so it typically pays one or two extra doublings before D2
//! fires.
//!
//! ```sh
//! cargo run --release --example convergence
//! ```

use stop_and_stare::graph::{gen, GraphStats, WeightModel};
use stop_and_stare::{
    Dssa, DssaIteration, Model, Params, RunResult, SamplingContext, StoppingRule,
};

fn print_trajectory(epsilon: f64, result: &RunResult, trace: &[DssaIteration]) {
    println!(
        "{:>3} {:>12} {:>10} {:>10} {:>9} {:>9} {:>9} {:>9}  D2?",
        "t", "pool", "Î(find)", "Î(verify)", "eps1", "eps2", "eps3", "eps_t"
    );
    for it in trace {
        match (it.influence_verify, it.epsilons, it.eps_t) {
            (Some(ic), Some((e1, e2, e3)), Some(et)) => println!(
                "{:>3} {:>12} {:>10.0} {:>10.0} {:>9.4} {:>9.4} {:>9.4} {:>9.4}  {}",
                it.t,
                it.pool_size,
                it.influence_find,
                ic,
                e1,
                e2,
                e3,
                et,
                if et <= epsilon { "STOP" } else { "continue" }
            ),
            _ => println!(
                "{:>3} {:>12} {:>10.0} {:>10} {:>9} {:>9} {:>9} {:>9}  D1 not met",
                it.t, it.pool_size, it.influence_find, "-", "-", "-", "-", "-"
            ),
        }
    }
    println!(
        "stopped after {} iterations with {} RR sets; Î = {:.0} (binding: {:?})\n",
        result.iterations,
        result.rr_sets_total(),
        result.influence_estimate,
        result.binding,
    );
}

fn main() {
    let graph = gen::rmat(20_000, 160_000, gen::RmatParams::GRAPH500, 13)
        .build(WeightModel::WeightedCascade)
        .expect("generator parameters are valid");
    println!("network: {}\n", GraphStats::compute(&graph));

    let epsilon = 0.1;
    let params = Params::with_paper_delta(1000, epsilon, graph.num_nodes() as u64)
        .expect("parameters are in range");
    let ctx = SamplingContext::new(&graph, Model::LinearThreshold).with_seed(21);

    let mut totals = Vec::new();
    for rule in [StoppingRule::Conservative, StoppingRule::DssaFix] {
        println!("── stopping rule: {rule} ──");
        let (result, trace) =
            Dssa::new(params.with_stopping_rule(rule)).run_traced(&ctx).expect("run succeeds");
        print_trajectory(epsilon, &result, &trace);
        totals.push((rule, result.rr_sets_total(), result.influence_estimate));
    }

    let (_, cons_total, cons_inf) = totals[0];
    let (_, fix_total, fix_inf) = totals[1];
    println!(
        "same stream, two anchors: conservative stopped at {cons_total} sets (Î = {cons_inf:.0}), \
         dssa-fix at {fix_total} sets (Î = {fix_inf:.0}) — {:.1}x more evidence demanded",
        fix_total as f64 / cons_total as f64
    );
    println!(
        "note how ε₂/ε₃ shrink as the pool doubles while ε₁ hovers near 0 — and how the \
         dssa-fix ε₂ starts near ε itself (what the coverage actually certifies) while the \
         conservative closed form starts √Λ below it (docs/DERIVATIONS.md §4)."
    );
}
