//! Bake-then-serve: sample an RR pool **once**, persist it with
//! [`SeedQueryEngine::save`], and let every later process start serving
//! from disk in milliseconds instead of re-running minutes of sampling.
//!
//! ```sh
//! cargo run --release --example bake_serve
//! ```
//!
//! The walk-through covers the full store lifecycle:
//!
//! 1. **Bake** — size a pool with D-SSA, sample it, stamp the run's
//!    stopping-rule metadata into the fingerprint, save atomically.
//! 2. **Serve** — reload with [`SeedQueryEngine::from_store`] (every
//!    epoch checksum-verified, the sampling fingerprint checked against
//!    the caller's context) and answer queries bit-identically.
//! 3. **Grow** — `extend` the reloaded engine and `save` again: only
//!    the new epochs are written, the old segment files are reused.
//! 4. **Recover** — corrupt a segment on disk and watch the strict
//!    loader refuse it while `from_store_recovering` serves the longest
//!    valid prefix and reports exactly what was lost.

// Example CLI reports wall-clock bake/serve timings; they never feed results.
#![allow(clippy::disallowed_methods)]

use std::time::Instant;

use stop_and_stare::graph::{gen, WeightModel};
use stop_and_stare::{Dssa, Model, Params, Recovery, SamplingContext, SeedQuery, SeedQueryEngine};

fn main() {
    let graph = gen::barabasi_albert(10_000, 5, gen::Orientation::RandomSingle, 42)
        .build(WeightModel::WeightedCascade)
        .expect("generator parameters are valid");
    let ctx = SamplingContext::new(&graph, Model::IndependentCascade).with_seed(7).with_threads(4);
    let dir = std::env::temp_dir().join(format!("sns-bake-serve-{}", std::process::id()));

    // 1. Bake: one sampling run, persisted with its provenance.
    let params = Params::new(10, 0.2, 0.1).expect("parameters are in range");
    let sizing = Dssa::new(params).run(&ctx).expect("run succeeds");
    let bake_start = Instant::now();
    let engine = SeedQueryEngine::sample(&ctx, sizing.rr_sets_main).with_run_metadata(&sizing);
    let baked_in = bake_start.elapsed();
    let stats = engine.save(&dir).expect("save commits atomically");
    println!(
        "baked {} RR sets in {baked_in:.0?}; saved {} epochs, {} KiB",
        engine.pool().len(),
        stats.epochs_written,
        stats.bytes_written / 1024
    );

    // 2. Serve: a fresh process reloads in milliseconds, answers
    //    bit-identically to the engine that baked the pool.
    let load_start = Instant::now();
    let served = SeedQueryEngine::from_store(&dir, &ctx).expect("fingerprint matches");
    let loaded_in = load_start.elapsed();
    let query = SeedQuery::top_k(10);
    let baked_answer = engine.answer(&query).expect("query is valid");
    let served_answer = served.answer(&query).expect("query is valid");
    assert_eq!(baked_answer, served_answer, "load is bit-identical");
    println!(
        "reloaded + verified in {loaded_in:.0?} ({}x faster than baking); top-10 Î = {:.1}",
        (baked_in.as_nanos() / loaded_in.as_nanos().max(1)),
        served_answer.influence_estimate
    );

    // 3. Grow: extend the pool, save again — old epochs are reused on
    //    disk, only the new one is written.
    let mut served = served;
    served.extend(&ctx, served.pool().len() as u64 / 2);
    let stats = served.save(&dir).expect("incremental save");
    println!(
        "extended to {} sets: {} epochs reused, {} written",
        served.pool().len(),
        stats.epochs_reused,
        stats.epochs_written
    );

    // 4. Recover: flip one bit in the newest segment. Strict loading
    //    refuses; recovery serves the longest valid prefix.
    let newest = format!("epoch-{:05}.rr", served.pool().epoch_boundaries().len() - 1);
    let mut bytes = std::fs::read(dir.join(&newest)).expect("segment exists");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(dir.join(&newest), &bytes).expect("rewrite segment");

    let strict = SeedQueryEngine::from_store(&dir, &ctx);
    println!("strict load after bit flip: {}", strict.expect_err("must be refused"));
    let (prefix, recovery) =
        SeedQueryEngine::from_store_recovering(&dir, &ctx).expect("prefix recovers");
    if let Recovery::Recovered { epochs_lost, sets_lost } = recovery {
        println!(
            "recovered {} sets (lost {epochs_lost} epoch(s), {sets_lost} sets — \
             extend({sets_lost}) would regenerate them bit-identically)",
            prefix.pool().len()
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}
