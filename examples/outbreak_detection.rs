//! Epidemic control: pick vaccination / monitoring targets.
//!
//! The paper's introduction lists epidemic control among IM's core
//! applications: the k most influential nodes under an infection model
//! are exactly the ones whose immunization (or monitoring) curbs the
//! expected outbreak the most. This example builds a contact network,
//! selects monitors with D-SSA, and measures how much seeding random
//! outbreaks *around* the monitors still spreads compared to random or
//! degree-based target selection.
//!
//! ```sh
//! cargo run --release --example outbreak_detection
//! ```

use rand::seq::SliceRandom;
use rand::SeedableRng;

use stop_and_stare::graph::{gen, WeightModel};
use stop_and_stare::{Dssa, Model, Params, SamplingContext, SpreadEstimator};

fn main() {
    // Contact network: small-world (household/workplace ring structure
    // with long-range shortcuts), uniform 20% transmission probability.
    let graph = gen::watts_strogatz(20_000, 8, 0.1, gen::Orientation::Symmetric, 77)
        .build(WeightModel::Constant(0.2))
        .expect("generator parameters are valid");
    let n = graph.num_nodes();
    let budget = 50;

    // Monitors = most influential spreaders under IC.
    let params = Params::with_paper_delta(budget, 0.1, u64::from(n)).expect("params in range");
    let ctx = SamplingContext::new(&graph, Model::IndependentCascade).with_seed(3);
    let result = Dssa::new(params).run(&ctx).expect("run succeeds");
    println!(
        "selected {} monitors in {:.0} ms using {} RR sets",
        budget,
        result.wall_time.as_secs_f64() * 1e3,
        result.rr_sets_total()
    );

    // Baselines: top-degree nodes, and a random committee.
    let mut by_degree: Vec<u32> = (0..n).collect();
    by_degree.sort_unstable_by_key(|&v| std::cmp::Reverse(graph.out_degree(v)));
    let degree_picks = &by_degree[..budget];
    let mut rng = rand::rngs::StdRng::seed_from_u64(8);
    let mut shuffled: Vec<u32> = (0..n).collect();
    shuffled.shuffle(&mut rng);
    let random_picks = &shuffled[..budget];

    let estimator = SpreadEstimator::new(&graph, Model::IndependentCascade);
    println!("\nexpected outbreak size if seeded at the chosen nodes (higher = more critical):");
    let mut scores = Vec::new();
    for (name, picks) in [
        ("D-SSA (influence)", result.seeds.as_slice()),
        ("top degree", degree_picks),
        ("random", random_picks),
    ] {
        let spread = estimator.estimate(picks, 5_000, 21);
        println!("{name:>18}: {spread:>8.1} nodes");
        scores.push(spread);
    }
    let (dssa, degree, random) = (scores[0], scores[1], scores[2]);
    println!(
        "\nD-SSA vs degree: {:+.1}% — on a homogeneous small-world contact net the degree \
         heuristic is a strong proxy, and any gap within ε = 10% is consistent with the \
         guarantee; vs random: {:+.1}%. Unlike either heuristic, the D-SSA choice carries \
         a worst-case (1 − 1/e − ε) certificate on every topology.",
        100.0 * (dssa - degree) / degree,
        100.0 * (dssa - random) / random,
    );
}
