//! Targeted viral marketing (TVM): maximize influence over a topic
//! audience rather than the whole network — §7.3 of the paper.
//!
//! A political campaign cares only about users interested in its topic.
//! This example synthesizes a Table 4-style target group, runs
//! D-SSA-TVM / SSA-TVM / KB-TIM, and shows that (1) the TVM seeds beat
//! generic IM seeds on *targeted* reach and (2) the stop-and-stare
//! algorithms beat KB-TIM on samples.
//!
//! ```sh
//! cargo run --release --example targeted_marketing
//! ```

use stop_and_stare::graph::gen::datasets;
use stop_and_stare::tvm::{
    DssaTvm, KbTim, SsaTvm, TargetWeights, TargetedSpreadEstimator, TOPIC_1,
};
use stop_and_stare::{Model, Params, SamplingContext};

fn main() {
    let graph =
        datasets::TWITTER.generate(1.0 / 1024.0, 2024).expect("generator parameters are valid");
    let n = graph.num_nodes();

    // Synthesize Topic 1's audience at the fraction Table 4 mined from
    // real tweets (~2.4% of users, Zipf-weighted by interest).
    let audience = TargetWeights::from_topic(&graph, &TOPIC_1, 5).expect("graph is non-empty");
    println!(
        "audience: {} of {} users targeted ({}), Γ = {:.1}",
        audience.num_targeted(),
        n,
        TOPIC_1.keywords.join(" / "),
        audience.gamma(),
    );

    let k = 25;
    let params = Params::with_paper_delta(k, 0.1, u64::from(n)).expect("parameters in range");

    let dssa = DssaTvm::new(params)
        .run(&graph, Model::LinearThreshold, &audience, 7, 1)
        .expect("run succeeds");
    let ssa = SsaTvm::new(params)
        .run(&graph, Model::LinearThreshold, &audience, 7, 1)
        .expect("run succeeds");
    let kb = KbTim::new(params)
        .run(&graph, Model::LinearThreshold, &audience, 7, 1)
        .expect("run succeeds");

    println!("\n{:>10} {:>12} {:>12} {:>14}", "algorithm", "time", "RR sets", "targeted reach");
    let scorer = TargetedSpreadEstimator::new(&graph, Model::LinearThreshold, &audience);
    for (name, r) in [("D-SSA-TVM", &dssa), ("SSA-TVM", &ssa), ("KB-TIM", &kb)] {
        let reach = scorer.estimate(&r.seeds, 5_000, 9);
        println!(
            "{:>10} {:>10.0}ms {:>12} {:>14.1}",
            name,
            r.wall_time.as_secs_f64() * 1e3,
            r.rr_sets_total(),
            reach
        );
    }

    // Compare against untargeted IM seeds: same budget pointed at the
    // whole network instead of the audience.
    let generic = stop_and_stare::Dssa::new(params)
        .run(&SamplingContext::new(&graph, Model::LinearThreshold).with_seed(7))
        .expect("run succeeds");
    let generic_reach = scorer.estimate(&generic.seeds, 5_000, 9);
    let targeted_reach = scorer.estimate(&dssa.seeds, 5_000, 9);
    println!(
        "\ntargeted reach, same budget: TVM seeds {targeted_reach:.1} vs generic IM seeds \
         {generic_reach:.1} — targeting the audience {}",
        if targeted_reach >= generic_reach { "pays off" } else { "did not pay off (rare)" }
    );
}
