//! Quickstart: find influential seeds on a synthetic social network.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use stop_and_stare::graph::{gen, GraphStats, WeightModel};
use stop_and_stare::{Dssa, Model, Params, SamplingContext, SpreadEstimator, Ssa};

fn main() {
    // A power-law network with social-media-like degree skew; the paper's
    // weighted-cascade edge weights (w(u,v) = 1/din(v)).
    let graph = gen::rmat(10_000, 80_000, gen::RmatParams::GRAPH500, 42)
        .build(WeightModel::WeightedCascade)
        .expect("generator parameters are valid");
    println!("network: {}", GraphStats::compute(&graph));

    // Budget of 20 seeds; (1 − 1/e − 0.1)-approximation, δ = 1/n.
    let params = Params::with_paper_delta(20, 0.1, graph.num_nodes() as u64)
        .expect("parameters are in range");
    let ctx = SamplingContext::new(&graph, Model::IndependentCascade).with_seed(7);

    // D-SSA: zero knobs, dynamically self-tuned.
    let dssa = Dssa::new(params).run(&ctx).expect("run succeeds");
    println!("\nD-SSA: {dssa}");
    println!("seeds: {:?}", dssa.seeds);

    // SSA with the paper's recommended ε-split, for comparison.
    let ssa = Ssa::new(params).run(&ctx).expect("run succeeds");
    println!("\nSSA:   {ssa}");

    // Verify both with ground-truth Monte Carlo simulation.
    let estimator = SpreadEstimator::new(&graph, Model::IndependentCascade);
    let spread_dssa = estimator.estimate(&dssa.seeds, 10_000, 99);
    let spread_ssa = estimator.estimate(&ssa.seeds, 10_000, 99);
    println!("\nsimulated spread: D-SSA seeds {spread_dssa:.1}, SSA seeds {spread_ssa:.1}");
    println!(
        "sample efficiency: D-SSA used {} RR sets, SSA used {}",
        dssa.rr_sets_total(),
        ssa.rr_sets_total()
    );
}
