//! A seed-selection *service*: freeze one RR-set pool, then answer a
//! batch of heterogeneous campaign questions against it — no resampling
//! per question.
//!
//! ```sh
//! cargo run --release --example seed_service
//! ```
//!
//! This is the deployment shape the frozen-pool engine exists for: the
//! expensive part (sampling; here sized by one D-SSA run) happens once,
//! and every follow-up — different budgets, "hub X is unavailable",
//! "these two are already signed", "how about the sports audience?" —
//! is a sub-millisecond query against the sealed snapshot.

use stop_and_stare::graph::{gen, GraphStats, WeightModel};
use stop_and_stare::tvm::TargetWeights;
use stop_and_stare::{Dssa, Model, Params, SamplingContext, SeedQuery, SeedQueryEngine};

fn main() {
    let graph = gen::barabasi_albert(20_000, 5, gen::Orientation::RandomSingle, 42)
        .build(WeightModel::WeightedCascade)
        .expect("generator parameters are valid");
    println!("network: {}", GraphStats::compute(&graph));

    // 1. Size the pool once with D-SSA's stopping rule, then freeze a
    //    pool of that size for serving.
    let params = Params::new(25, 0.2, 0.1).expect("parameters are in range");
    let ctx = SamplingContext::new(&graph, Model::IndependentCascade).with_seed(7).with_threads(4);
    let sizing = Dssa::new(params).run(&ctx).expect("run succeeds");
    println!(
        "\nD-SSA sized the pool: {} RR sets ({} iterations), Î = {:.1}",
        sizing.rr_sets_main, sizing.iterations, sizing.influence_estimate
    );
    let engine = SeedQueryEngine::sample(&ctx, sizing.rr_sets_main);
    println!(
        "engine frozen: {} sets, {} node entries, pool {} KiB",
        engine.pool().len(),
        engine.pool().total_nodes(),
        engine.pool().memory_bytes() / 1024
    );

    // 2. One batch of very different questions, answered in parallel.
    let top = engine.answer(&SeedQuery::top_k(25)).expect("valid query");
    let star = top.seeds[0];
    let sports = TargetWeights::synthetic_topic(&graph, 0.05, 1.0, 3).expect("valid topic");
    let batch = vec![
        SeedQuery::top_k(5),
        SeedQuery::top_k(25),
        // contingency: the top influencer declined
        SeedQuery::top_k(25).with_excluded(vec![star]),
        // two ambassadors are already under contract
        SeedQuery::top_k(25).with_forced(top.seeds[3..5].to_vec()),
        // the same pool, asked for the sports-fan audience
        sports.seed_query(25),
        // sensitivity: would half the samples have agreed?
        SeedQuery::top_k(25).over_range(0..engine.pool().len() as u32 / 2),
    ];
    let answers = engine.answer_batch(&batch).expect("valid batch");

    let labels = [
        "top-5".to_string(),
        "top-25".to_string(),
        format!("top-25 minus node {star}"),
        "top-25 with 2 signed".to_string(),
        "top-25 for sports fans".to_string(),
        "top-25 on half the pool".to_string(),
    ];
    println!("\n{:<28} {:>10} {:>12}  first seeds", "query", "covered", "Î");
    for (label, answer) in labels.iter().zip(&answers) {
        println!(
            "{:<28} {:>10.1} {:>12.1}  {:?}",
            label,
            answer.covered,
            answer.influence_estimate,
            &answer.seeds[..4.min(answer.seeds.len())]
        );
    }

    // 3. Grow while serving: the campaign keeps running, so keep
    //    extending the pool (same deterministic stream — the grown pool
    //    is bit-identical to sampling the final size up front). Growth
    //    seals one new epoch; nothing cached is invalidated, and the
    //    next full-pool query merges the frozen per-epoch snapshots
    //    instead of rebuilding from scratch.
    let mut engine = engine;
    for _ in 0..2 {
        engine.extend(&ctx, sizing.rr_sets_main / 2);
        let refreshed = engine.answer(&SeedQuery::top_k(25)).expect("valid query");
        println!(
            "extended to {} sets ({} epochs): top-25 Î = {:.1}",
            engine.pool().len(),
            engine.pool().epoch_boundaries().len(),
            refreshed.influence_estimate
        );
    }
    let stats = engine.stats();
    println!(
        "cache: {} hits / {} misses / {} evictions, {} epochs frozen, {} merges, {} KiB cached",
        stats.snapshot_hits,
        stats.snapshot_misses,
        stats.evictions,
        stats.epochs_frozen,
        stats.merges,
        stats.cached_bytes / 1024
    );

    // 4. The contract the engine keeps: answers are exactly what direct
    //    Max-Coverage over the same (grown) pool would produce.
    let direct = stop_and_stare::rrset::max_coverage(&engine.pool(), 25);
    let served = engine.answer(&SeedQuery::top_k(25)).expect("valid query");
    assert_eq!(served.seeds, direct.seeds, "engine == direct greedy");
    println!("\nverified: engine answers are bit-identical to direct max-coverage");
}
